"""STRUQL -> SQL compilation over the SQLite edge-triple backend.

:class:`SqlQueryEngine` is the :class:`~repro.struql.eval.QueryEngine`
variant registered for :class:`~repro.repository.sql.SqlGraph` sources.
Its one override is `_run_blocks`: when a top-level block-mode
evaluation starts from the empty seed, the maximal *prefix* of the
ordered plan that falls in the conjunctive fragment -- collection
membership, edge conditions, comparisons, type predicates, and
fully-bound regular path filters -- is compiled into a single
parameterized SELECT and executed inside SQLite; the decoded rows then
flow through the unchanged in-memory operators for whatever residue the
compiler declined (negation, generating paths, label predicates,
custom predicates).

The compiled query must reproduce the in-memory engine's binding
relation *exactly* -- rows and row order -- because warm and cold
engines, ablation baselines, and the incremental regenerator all promise
byte-identical output.  Three mechanisms deliver that:

* **Order parity.**  Every generating step appends the ORDER BY keys
  that replicate the in-memory iteration order at that step: `m.id` for
  collection scans (member insertion order), `(g.seq, e.id)` for
  out-edge enumeration (label-group order, then edge order),
  `(probe rank, e.id)` for reverse value probes (probe-major, the
  coercion spelling order), `e.id` for label scans.  The composite sort
  is exactly the nested-loop visit order because each step's key is
  unique per emitted row of that step.
* **Coercion parity.**  Value equality compiles to the same dynamic
  coercion :func:`~repro.graph.values.atoms_equal` performs -- same-type
  rows compare by identity (the ``(graph, typ, val)`` key is injective),
  cross-type rows numerically when both sides carry a number, else by
  rendered string -- and reverse probes resolve the shared
  :func:`~repro.graph.values.coercion_probes` spellings, statically for
  constants and through the ``atom_probes`` table for runtime values.
* **Error parity.**  A condition whose in-memory evaluation would raise
  (an order comparison or predicate over an unbound variable, an
  unknown or custom predicate, a premature negation) stops the prefix,
  so the residual loop raises the identical error.

Regular path expressions whose leaves are plain labels or wildcards
compile to a recursive CTE over the closure-expanded Thompson automaton;
automata the CTE form cannot express (label *predicates*) and generating
paths fall back to the existing NFA search -- the paper's evaluation
strategy, kept as-is.

Pushdown is chosen per query by a cost cutoff against
:class:`~repro.repository.indexes.IndexStatistics`: below the cutoff the
in-memory operators over the fetched frontier win (the per-row overhead
of SQLite beats its set-at-a-time advantage on small frontiers), so the
in-memory engine remains the ablation baseline at small scale without
any configuration.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..graph import Atom, AtomType, Graph, Oid, coercion_probes, type_predicate_names
from ..repository.sql import SqlGraph, atom_num, atom_val
from . import builtins
from .ast import (
    AnyLabel,
    Alternation,
    CollectionCond,
    ComparisonCond,
    Concat,
    Condition,
    Const,
    EdgeCond,
    LabelIs,
    LabelPredicate,
    PathCond,
    PathExpr,
    PredicateCond,
    Star,
    Var,
)
from .eval import (
    OperatorStats,
    QueryEngine,
    Row,
    _Frame,
    _UNSET,
    _values_equal,
    register_engine_factory,
)
from .optimizer import estimate_cost
from .plancache import PlanCache

#: Estimated first-operator cardinality below which the in-memory
#: operators are kept (the per-query ablation baseline selection).
DEFAULT_PUSHDOWN_CUTOFF = 64.0

#: Predicate names with a compiled SQL form; anything else stops the
#: prefix so the residual loop resolves (or rejects) it identically.
_COMPILABLE_PREDICATES = frozenset(type_predicate_names()) | {"isNode", "isAtom"}

#: predicate name -> atom ``typ`` values satisfying it (type checks only;
#: isNumber / isNode / isAtom are handled structurally)
_PREDICATE_TYPES: Dict[str, Tuple[str, ...]] = {
    "isString": ("string",),
    "isInteger": ("integer",),
    "isFloat": ("float",),
    "isBoolean": ("boolean",),
    "isUrl": ("url",),
    "isTextFile": ("text",),
    "isImageFile": ("image",),
    "isPostScript": ("postscript",),
    "isHtmlFile": ("html",),
    "isFile": ("text", "image", "postscript", "html"),
}


@dataclass
class _VarInfo:
    """Compile-time binding state of one frame variable.

    ``node`` carries a node-id expression; ``target`` a (node-id,
    atom-id) expression pair of which exactly one is non-NULL per row;
    ``label`` a text expression; ``const`` a compile-time atom (from an
    equality against a literal).  Kinds mirror the runtime value space
    (Oid / Target / str / Atom), so bound-ness and type dispatch at
    compile time agree with the runtime row contents.
    """

    kind: str
    node_expr: Optional[str] = None
    atom_expr: Optional[str] = None
    text_expr: Optional[str] = None
    const: Optional[Atom] = None


@dataclass
class PushdownPlan:
    """One compiled prefix: the SELECT, its parameters, and the decode
    recipe mapping result columns back onto frame slots."""

    sql: str
    params: Dict[str, object]
    #: per frame slot: ("node", col) | ("target", ncol, acol) |
    #: ("label", col) | ("const", value) | ("unset",)
    slots: Tuple[Tuple[object, ...], ...]
    pushed: int
    #: compile-time-proven empty result (e.g. a probe with no spellings
    #: in the store); execution is skipped entirely
    empty: bool = False


@dataclass
class PushdownReport:
    """What happened to the most recent top-level evaluation."""

    pushed: int
    total: int
    sql: Optional[str] = None
    fallback_reason: Optional[str] = None

    def describe(self) -> str:
        if self.sql is None:
            return f"no pushdown ({self.fallback_reason})"
        return f"pushed {self.pushed}/{self.total} conditions"


class _Bail(Exception):
    """Internal: the current condition cannot be compiled; stop the
    prefix here (never propagates out of the compiler)."""


class _Compiler:
    """Compiles a maximal plan prefix into one SELECT statement."""

    def __init__(self, graph: SqlGraph, frame: _Frame) -> None:
        self.graph = graph
        self.frame = frame
        self.params: Dict[str, object] = {"g": graph._graph_id}
        self._counter = 0
        self.from_parts: List[str] = []
        self.where: List[str] = []
        self.order: List[str] = []
        self.vars: Dict[str, _VarInfo] = {}
        self.empty = False
        self.pushed = 0

    # ------------------------------------------------------------ #
    # plumbing

    def p(self, value: object) -> str:
        name = f"p{self._counter}"
        self._counter += 1
        self.params[name] = value
        return f":{name}"

    def alias(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def table(self, clause: str) -> None:
        self.from_parts.append(clause)

    def _atom_join(self, atom_expr: str) -> str:
        """LEFT JOIN the atoms row of an atom-id expression; returns the
        alias (at most one row: id is the primary key)."""
        a = self.alias("a")
        self.table(f"LEFT JOIN atoms {a} ON {a}.id = {atom_expr}")
        return a

    # ------------------------------------------------------------ #
    # coercing equality fragments

    def _eq_atom_const(self, alias: str, const: Atom) -> str:
        """atoms_equal(<atoms row `alias`>, const) -- NULL/false when the
        row is absent (edge target is a node), true/false otherwise."""
        typ = self.p(const.type.value)
        val = self.p(atom_val(const))
        num = self.p(atom_num(const))
        text = self.p(const.as_string())
        return (
            f"(({alias}.typ = {typ} AND {alias}.val = {val})"
            f" OR ({alias}.typ IS NOT NULL AND {alias}.typ != {typ}"
            f" AND (({num} IS NOT NULL AND {alias}.num IS NOT NULL"
            f" AND {alias}.num = {num})"
            f" OR (({num} IS NULL OR {alias}.num IS NULL)"
            f" AND {alias}.str = {text}))))"
        )

    @staticmethod
    def _eq_atom_atom(left: str, right: str) -> str:
        """atoms_equal between two atoms rows (same-type rows are equal
        exactly when they are the same row: (graph, typ, val) is unique
        and ``val`` is injective per type)."""
        return (
            f"(({left}.id = {right}.id)"
            f" OR ({left}.id IS NOT NULL AND {right}.id IS NOT NULL"
            f" AND {left}.typ != {right}.typ"
            f" AND (({left}.num IS NOT NULL AND {right}.num IS NOT NULL"
            f" AND {left}.num = {right}.num)"
            f" OR (({left}.num IS NULL OR {right}.num IS NULL)"
            f" AND {left}.str = {right}.str))))"
        )

    def _static_probe_ids(self, const: Atom) -> List[Tuple[int, int]]:
        """(atom row id, probe rank) for the coercion spellings of a
        constant that exist in the store, original ranks preserved."""
        found: List[Tuple[int, int]] = []
        for rank, probe in enumerate(coercion_probes(const)):
            atom_id = self.graph._atom_id(probe)
            if atom_id is not None:
                found.append((atom_id, rank))
        return found

    # ------------------------------------------------------------ #
    # condition dispatch

    def compile(self, ordered: Sequence[Condition]) -> Tuple[int, bool]:
        """Compile the maximal prefix; returns (pushed count, empty)."""
        for condition in ordered:
            try:
                self._compile_one(condition)
            except _Bail:
                break
            self.pushed += 1
            if self.empty:
                # constant-false: the in-memory loop would observe zero
                # rows here and break; later conditions never run
                break
        return self.pushed, self.empty

    def _compile_one(self, condition: Condition) -> None:
        if self.empty:
            raise _Bail
        if isinstance(condition, CollectionCond):
            self._compile_collection(condition)
        elif isinstance(condition, EdgeCond):
            self._compile_edge(condition)
        elif isinstance(condition, ComparisonCond):
            self._compile_comparison(condition)
        elif isinstance(condition, PredicateCond):
            self._compile_predicate(condition)
        elif isinstance(condition, PathCond):
            self._compile_path(condition)
        else:
            raise _Bail  # negation and anything unknown stay residual

    # ------------------------------------------------------------ #
    # collection membership

    def _compile_collection(self, condition: CollectionCond) -> None:
        info = self.vars.get(condition.var.name)
        name = self.p(condition.collection)
        if info is None:
            m = self.alias("m")
            join = f"members {m}"
            on = f"{m}.graph = :g AND {m}.collection = {name}"
            if self.from_parts:
                self.table(f"JOIN {join} ON {on}")
            else:
                self.table(join)
                self.where.append(on)
            self.order.append(f"{m}.id")
            self.vars[condition.var.name] = _VarInfo(
                "node", node_expr=f"{m}.node"
            )
            return
        if info.kind == "node":
            self.where.append(
                f"EXISTS (SELECT 1 FROM members WHERE graph = :g"
                f" AND collection = {name} AND node = {info.node_expr})"
            )
        elif info.kind == "target":
            self.where.append(
                f"({info.node_expr} IS NOT NULL AND EXISTS ("
                f"SELECT 1 FROM members WHERE graph = :g"
                f" AND collection = {name} AND node = {info.node_expr}))"
            )
        else:
            # a label or constant atom is never a collection member
            self.empty = True

    # ------------------------------------------------------------ #
    # edge conditions

    def _compile_edge(self, condition: EdgeCond) -> None:
        # a variable name repeated across positions needs an intra-step
        # equality the generator shapes below don't model; leave those
        # rare conditions to the residual operators
        positions = [condition.source.name]
        if isinstance(condition.label, Var):
            positions.append(condition.label.name)
        if isinstance(condition.target, Var):
            positions.append(condition.target.name)
        if len(set(positions)) != len(positions):
            raise _Bail

        # --- resolve the label position
        label = condition.label
        arc_gen: Optional[str] = None
        label_expr: Optional[str] = None
        label_guard: Optional[str] = None
        if isinstance(label, str):
            label_expr = self.p(label)
        else:
            linfo = self.vars.get(label.name)
            if linfo is None:
                arc_gen = label.name
            elif linfo.kind == "label":
                label_expr = linfo.text_expr
            elif linfo.kind == "const":
                label_expr = self.p(linfo.const.as_string())
            elif linfo.kind == "target":
                # runtime: an atom labels by its string rendering, a
                # node never labels anything (the row is dropped)
                label_expr = (
                    f"(SELECT str FROM atoms WHERE id = {linfo.atom_expr})"
                )
                label_guard = f"{linfo.atom_expr} IS NOT NULL"
            else:  # node-bound arc variable: nothing matches
                self.empty = True
                return

        # --- resolve the source position
        src_info = self.vars.get(condition.source.name)
        if src_info is not None and src_info.kind in ("label", "const"):
            self.empty = True  # a non-oid can never be an edge source
            return

        # --- resolve the target position
        target = condition.target
        tgt_const: Optional[Atom] = None
        tgt_info: Optional[_VarInfo] = None
        tgt_gen: Optional[str] = None
        if isinstance(target, Const):
            tgt_const = target.atom
        else:
            tinfo = self.vars.get(target.name)
            if tinfo is None:
                tgt_gen = target.name
            elif tinfo.kind == "const":
                tgt_const = tinfo.const
            else:
                tgt_info = tinfo
        if src_info is None and tgt_info is not None and tgt_info.kind == "label":
            # probing by a runtime string needs its coercion spellings,
            # which only exist at run time: leave it to the residual
            raise _Bail
        if (
            src_info is not None
            and tgt_info is not None
            and tgt_info.kind == "label"
        ):
            raise _Bail  # same runtime-coercion problem, filter shape

        e = self.alias("e")
        on = [f"{e}.graph = :g"]  # attached to the edges join
        pre_table: Optional[str] = None  # derived table edges joins against
        post_joins: List[str] = []  # joins that reference the edge alias
        order_keys: List[str] = []

        if src_info is not None:
            # source-bound: out-edge enumeration (or a pure filter)
            on.append(f"{e}.src = {src_info.node_expr}")
            if label_expr is not None:
                on.append(f"{e}.label = {label_expr}")
                order_keys.append(f"{e}.id")
            else:
                g = self.alias("g")
                post_joins.append(
                    f"JOIN egroups {g} ON {g}.graph = :g"
                    f" AND {g}.src = {e}.src AND {g}.label = {e}.label"
                )
                order_keys.extend([f"{g}.seq", f"{e}.id"])
        elif tgt_const is not None:
            # reverse probe of a literal: its coercion spellings resolve
            # to atom row ids at compile time, probe-major order
            probe_ids = self._static_probe_ids(tgt_const)
            if not probe_ids:
                self.empty = True
                return
            rows = " UNION ALL ".join(
                f"SELECT {self.p(atom_id)} AS atom, {rank} AS rnk"
                for atom_id, rank in probe_ids
            )
            pr = self.alias("pr")
            pre_table = f"({rows}) {pr}"
            on.append(f"{e}.tgt_atom = {pr}.atom")
            if label_expr is not None:
                on.append(f"{e}.label = {label_expr}")
            order_keys.extend([f"{pr}.rnk", f"{e}.id"])
        elif tgt_info is not None:
            # reverse probe of a runtime value
            if tgt_info.kind == "node":
                on.append(f"{e}.tgt_node = {tgt_info.node_expr}")
                order_keys.append(f"{e}.id")
            else:  # target kind: node arm or probe-table arm
                ap = self.alias("ap")
                post_joins.append(
                    f"LEFT JOIN atom_probes {ap} ON {ap}.graph = :g"
                    f" AND {ap}.atom = {tgt_info.atom_expr}"
                    f" AND {ap}.probe = {e}.tgt_atom"
                )
                self.where.append(
                    f"(({tgt_info.node_expr} IS NOT NULL"
                    f" AND {e}.tgt_node = {tgt_info.node_expr})"
                    f" OR {ap}.probe IS NOT NULL)"
                )
                order_keys.extend([f"COALESCE({ap}.rank, 0)", f"{e}.id"])
            if label_expr is not None:
                on.append(f"{e}.label = {label_expr}")
        elif label_expr is not None:
            # label scan, extent order
            on.append(f"{e}.label = {label_expr}")
            order_keys.append(f"{e}.id")
        else:
            # full scan: all edges in edges() order
            g = self.alias("g")
            post_joins.append(
                f"JOIN egroups {g} ON {g}.graph = :g"
                f" AND {g}.src = {e}.src AND {g}.label = {e}.label"
            )
            order_keys.extend([f"{e}.src", f"{g}.seq", f"{e}.id"])

        # --- emit: derived table, the edges join, dependent joins
        if pre_table is not None:
            if self.from_parts:
                self.table(f"JOIN {pre_table} ON 1=1")
            else:
                self.table(pre_table)
            self.table(f"JOIN edges {e} ON " + " AND ".join(on))
        elif self.from_parts:
            self.table(f"JOIN edges {e} ON " + " AND ".join(on))
        else:
            self.table(f"edges {e}")
            self.where.extend(on)
        self.from_parts.extend(post_joins)
        if label_guard is not None:
            self.where.append(label_guard)
        self.order.extend(order_keys)

        # --- bound-target filter for the source-bound shapes (the
        # unbound-source shapes constrained the target in the join)
        if src_info is not None:
            if tgt_const is not None:
                ta = self._atom_join(f"{e}.tgt_atom")
                self.where.append(self._eq_atom_const(ta, tgt_const))
            elif tgt_info is not None:
                self.where.append(self._eq_target_var(e, tgt_info))

        # --- bind generated positions
        if src_info is None:
            self.vars[condition.source.name] = _VarInfo(
                "node", node_expr=f"{e}.src"
            )
        if arc_gen is not None:
            self.vars[arc_gen] = _VarInfo("label", text_expr=f"{e}.label")
        if tgt_gen is not None:
            self.vars[tgt_gen] = _VarInfo(
                "target",
                node_expr=f"{e}.tgt_node",
                atom_expr=f"{e}.tgt_atom",
            )

    def _eq_target_var(self, e: str, info: _VarInfo) -> str:
        """Edge target equals a bound variable (filter shape)."""
        if info.kind == "node":
            return f"{e}.tgt_node = {info.node_expr}"
        if info.kind == "const":
            ta = self._atom_join(f"{e}.tgt_atom")
            return self._eq_atom_const(ta, info.const)
        if info.kind == "target":
            ta = self._atom_join(f"{e}.tgt_atom")
            va = self._atom_join(info.atom_expr)
            return (
                f"(({info.node_expr} IS NOT NULL"
                f" AND {e}.tgt_node = {info.node_expr})"
                f" OR {self._eq_atom_atom(ta, va)})"
            )
        raise _Bail  # label kind: runtime string coercion

    # ------------------------------------------------------------ #
    # comparisons

    def _resolve_term(self, term: Union[Var, Const]):
        if isinstance(term, Const):
            return _VarInfo("const", const=term.atom), None
        info = self.vars.get(term.name)
        return info, term.name

    def _compile_comparison(self, condition: ComparisonCond) -> None:
        left, left_name = self._resolve_term(condition.left)
        right, right_name = self._resolve_term(condition.right)
        op = condition.op
        if left is None and right is None:
            raise _Bail  # the in-memory operator raises here
        if left is None or right is None:
            if op != "=":
                raise _Bail  # order comparison with an unbound side raises
            # equality binds the unbound side by copying the other's state
            if left is None:
                self.vars[left_name] = right
            else:
                self.vars[right_name] = left
            return
        if op in ("=", "!="):
            verdict = self._eq_fragment(left, right)
            if verdict is True:
                matched = "1"
            elif verdict is False:
                matched = "0"
            else:
                matched = verdict
            if op == "=":
                if matched == "0":
                    self.empty = True
                elif matched != "1":
                    self.where.append(matched)
            else:
                if matched == "1":
                    self.empty = True
                elif matched != "0":
                    self.where.append(f"NOT COALESCE({matched}, 0)")
            return
        self._compile_order(left, right, op)

    def _eq_fragment(self, left: _VarInfo, right: _VarInfo):
        """SQL for _values_equal(left, right); True/False when decidable
        at compile time.  Raises _Bail for label-vs-atom shapes (their
        coercion needs a runtime numeric parse)."""
        if left.kind == "const" and right.kind == "const":
            return _values_equal(left.const, right.const)
        # oid on either side: plain equality
        if left.kind == "node" or right.kind == "node":
            node, other = (left, right) if left.kind == "node" else (right, left)
            if other.kind == "node":
                return f"({node.node_expr} = {other.node_expr})"
            if other.kind == "target":
                return (
                    f"({other.node_expr} IS NOT NULL"
                    f" AND {node.node_expr} = {other.node_expr})"
                )
            return False  # node vs label/const-atom is never equal
        if left.kind == "label" and right.kind == "label":
            return f"({left.text_expr} = {right.text_expr})"
        if left.kind == "label" or right.kind == "label":
            lab, other = (left, right) if left.kind == "label" else (right, left)
            if other.kind == "const" and other.const.type is AtomType.STRING:
                return f"({lab.text_expr} = {self.p(other.const.value)})"
            raise _Bail  # coercing a label needs a runtime numeric parse
        # both sides are atoms (target rows or constants)
        if left.kind == "target" and right.kind == "target":
            la = self._atom_join(left.atom_expr)
            ra = self._atom_join(right.atom_expr)
            node_arm = (
                f"({left.node_expr} IS NOT NULL AND {right.node_expr} IS NOT NULL"
                f" AND {left.node_expr} = {right.node_expr})"
            )
            return f"({node_arm} OR {self._eq_atom_atom(la, ra)})"
        mixed, const = (
            (left, right) if left.kind == "target" else (right, left)
        )
        va = self._atom_join(mixed.atom_expr)
        return self._eq_atom_const(va, const.const)

    def _compile_order(self, left: _VarInfo, right: _VarInfo, op: str) -> None:
        if left.kind == "const" and right.kind == "const":
            if QueryEngine._compare(left.const, right.const, op):
                return
            self.empty = True
            return
        if left.kind == "node" or right.kind == "node":
            self.empty = True  # oids are not ordered
            return
        if left.kind == "label" or right.kind == "label":
            raise _Bail  # numeric-or-lexicographic needs a runtime parse
        lnum, lstr = self._order_operand(left)
        rnum, rstr = self._order_operand(right)
        sql_op = op
        guards: List[str] = []
        for info in (left, right):
            if info.kind == "target":
                guards.append(f"{info.atom_expr} IS NOT NULL")
        compare = (
            f"(CASE WHEN {lnum} IS NOT NULL AND {rnum} IS NOT NULL"
            f" THEN {lnum} {sql_op} {rnum}"
            f" ELSE {lstr} {sql_op} {rstr} END)"
        )
        self.where.append(" AND ".join(guards + [compare]))

    def _order_operand(self, info: _VarInfo) -> Tuple[str, str]:
        if info.kind == "const":
            return self.p(atom_num(info.const)), self.p(info.const.as_string())
        alias = self._atom_join(info.atom_expr)
        return f"{alias}.num", f"{alias}.str"

    # ------------------------------------------------------------ #
    # predicates

    def _compile_predicate(self, condition: PredicateCond) -> None:
        info = self.vars.get(condition.var.name)
        if info is None:
            raise _Bail  # the in-memory operator raises on unbound vars
        name = condition.name
        if name not in _COMPILABLE_PREDICATES:
            raise _Bail  # custom or unknown: residual resolves or raises
        if info.kind == "const":
            predicate = builtins.object_predicate(name)
            if not predicate(info.const):
                self.empty = True
            return
        if info.kind == "node":
            if name != "isNode":
                self.empty = True
            return
        if info.kind == "label":
            # runtime wraps the string as a STRING atom
            if name in ("isString", "isAtom"):
                return
            if name == "isNumber":
                raise _Bail  # needs a runtime numeric parse
            self.empty = True
            return
        # target kind
        if name == "isNode":
            self.where.append(f"{info.node_expr} IS NOT NULL")
        elif name == "isAtom":
            self.where.append(f"{info.atom_expr} IS NOT NULL")
        elif name == "isNumber":
            alias = self._atom_join(info.atom_expr)
            self.where.append(f"{alias}.num IS NOT NULL")
        else:
            types = _PREDICATE_TYPES[name]
            alias = self._atom_join(info.atom_expr)
            if len(types) == 1:
                self.where.append(f"{alias}.typ = {self.p(types[0])}")
            else:
                marks = ", ".join(self.p(t) for t in types)
                self.where.append(f"{alias}.typ IN ({marks})")

    # ------------------------------------------------------------ #
    # regular path filters

    def _compile_path(self, condition: PathCond) -> None:
        src_info = self.vars.get(condition.source.name)
        if src_info is None:
            raise _Bail  # generating paths stay on the NFA search
        if src_info.kind in ("label", "const"):
            self.empty = True  # only nodes have outgoing paths
            return

        target = condition.target
        tgt_const: Optional[Atom] = None
        tgt_info: Optional[_VarInfo] = None
        if isinstance(target, Const):
            tgt_const = target.atom
        else:
            tinfo = self.vars.get(target.name)
            if tinfo is None:
                raise _Bail  # generating paths stay on the NFA search
            if tinfo.kind == "const":
                tgt_const = tinfo.const
            elif tinfo.kind == "label":
                raise _Bail  # runtime string probes
            else:
                tgt_info = tinfo

        automaton = _compile_automaton(condition.path)
        if automaton is None:
            raise _Bail  # label predicates: the NFA fallback handles them
        starts, accept, arcs = automaton

        src_expr = src_info.node_expr
        guards: List[str] = []
        if src_info.kind == "target":
            guards.append(f"{src_expr} IS NOT NULL")

        if not arcs:
            # no consuming transitions: only the zero-length path exists
            if accept not in starts:
                self.empty = True
                return
            if tgt_const is not None:
                self.empty = True  # a node never equals an atom
                return
            eq = f"{tgt_info.node_expr} = {src_expr}"
            if tgt_info.kind == "target":
                eq = f"({tgt_info.node_expr} IS NOT NULL AND {eq})"
            self.where.append(" AND ".join(guards + [eq]))
            return

        tr_rows = " UNION ALL ".join(
            "SELECT "
            + f"{frm} AS frm, "
            + (f"{self.p(lbl)} AS lbl" if lbl is not None else "NULL AS lbl")
            + f", {nxt} AS nxt"
            for frm, lbl, nxt in arcs
        )
        seed_rows = " UNION ALL ".join(f"SELECT {s} AS s" for s in sorted(starts))

        accepts: List[str] = []
        if tgt_const is None and tgt_info is not None:
            node_expr = tgt_info.node_expr
            node_accept = (
                f"SELECT 1 FROM reach r WHERE r.s = {accept}"
                f" AND r.n = {node_expr}"
            )
            accepts.append(node_accept)
            if tgt_info.kind == "target":
                accepts.append(
                    f"SELECT 1 FROM reach r"
                    f" JOIN edges e ON e.graph = :g AND e.src = r.n"
                    f" AND e.tgt_atom IN (SELECT probe FROM atom_probes"
                    f" WHERE graph = :g AND atom = {tgt_info.atom_expr})"
                    f" JOIN tr t ON t.frm = r.s AND t.nxt = {accept}"
                    f" AND (t.lbl IS NULL OR t.lbl = e.label)"
                )
        else:
            probe_ids = self._static_probe_ids(tgt_const)
            if not probe_ids:
                self.empty = True
                return
            marks = ", ".join(self.p(atom_id) for atom_id, _ in probe_ids)
            accepts.append(
                f"SELECT 1 FROM reach r"
                f" JOIN edges e ON e.graph = :g AND e.src = r.n"
                f" AND e.tgt_atom IN ({marks})"
                f" JOIN tr t ON t.frm = r.s AND t.nxt = {accept}"
                f" AND (t.lbl IS NULL OR t.lbl = e.label)"
            )

        exists = (
            "EXISTS (WITH RECURSIVE"
            f" tr(frm, lbl, nxt) AS ({tr_rows}),"
            f" reach(n, s) AS ("
            f"SELECT {src_expr}, st.s FROM ({seed_rows}) st"
            f" UNION "
            f"SELECT e.tgt_node, t.nxt FROM reach r"
            f" JOIN edges e ON e.graph = :g AND e.src = r.n"
            f" AND e.tgt_node IS NOT NULL"
            f" JOIN tr t ON t.frm = r.s"
            f" AND (t.lbl IS NULL OR t.lbl = e.label))"
            f" {' UNION ALL '.join(accepts)})"
        )
        self.where.append(" AND ".join(guards + [exists]))

    # ------------------------------------------------------------ #
    # assembly

    def finalize(self) -> Optional[PushdownPlan]:
        if self.pushed == 0 or not self.from_parts:
            return None
        selects: List[str] = []
        slots: List[Tuple[object, ...]] = []
        for name in self.frame.names:
            info = self.vars.get(name)
            if info is None:
                slots.append(("unset",))
            elif info.kind == "node":
                slots.append(("node", len(selects)))
                selects.append(info.node_expr)
            elif info.kind == "target":
                slots.append(("target", len(selects), len(selects) + 1))
                selects.extend([info.node_expr, info.atom_expr])
            elif info.kind == "label":
                slots.append(("label", len(selects)))
                selects.append(info.text_expr)
            else:
                slots.append(("const", info.const))
        sql = "SELECT " + (", ".join(selects) if selects else "1")
        sql += " FROM " + " ".join(self.from_parts)
        if self.where:
            sql += " WHERE " + " AND ".join(f"({w})" for w in self.where)
        if self.order:
            sql += " ORDER BY " + ", ".join(self.order)
        return PushdownPlan(
            sql=sql,
            params=self.params,
            slots=tuple(slots),
            pushed=self.pushed,
            empty=self.empty,
        )


# ---------------------------------------------------------------------- #
# path automaton (closure-expanded Thompson construction)


def _compile_automaton(
    path: PathExpr,
) -> Optional[Tuple[Set[int], int, List[Tuple[int, Optional[str], int]]]]:
    """(start states, accept state, consuming transitions) of a path
    expression, with epsilon moves folded away -- or None when the path
    uses label predicates (those need the Python NFA's closures).

    Transitions are closure-expanded: an arc ``(u, lbl, v)`` becomes one
    row per state in eclose(v), and the start-state set is eclose(start),
    so reachability never needs epsilon steps.  ``lbl is None`` matches
    any label (the wildcard).
    """
    states = [0]
    arcs: List[Tuple[int, Optional[str], int]] = []
    eps: List[Tuple[int, int]] = []

    def new_state() -> int:
        states.append(len(states))
        return states[-1]

    def build(expr: PathExpr) -> Optional[Tuple[int, int]]:
        if isinstance(expr, LabelIs):
            s, t = new_state(), new_state()
            arcs.append((s, expr.label, t))
            return s, t
        if isinstance(expr, AnyLabel):
            s, t = new_state(), new_state()
            arcs.append((s, None, t))
            return s, t
        if isinstance(expr, LabelPredicate):
            return None
        if isinstance(expr, Concat):
            s, t = new_state(), new_state()
            previous = s
            for part in expr.parts:
                frag = build(part)
                if frag is None:
                    return None
                eps.append((previous, frag[0]))
                previous = frag[1]
            eps.append((previous, t))
            return s, t
        if isinstance(expr, Alternation):
            s, t = new_state(), new_state()
            for option in expr.options:
                frag = build(option)
                if frag is None:
                    return None
                eps.append((s, frag[0]))
                eps.append((frag[1], t))
            return s, t
        if isinstance(expr, Star):
            s, t = new_state(), new_state()
            frag = build(expr.inner)
            if frag is None:
                return None
            eps.append((s, t))
            eps.append((s, frag[0]))
            eps.append((frag[1], frag[0]))
            eps.append((frag[1], t))
            return s, t
        return None

    frag = build(path)
    if frag is None:
        return None
    start, accept = frag

    adjacency: Dict[int, List[int]] = {}
    for u, v in eps:
        adjacency.setdefault(u, []).append(v)

    def eclose(state: int) -> Set[int]:
        seen = {state}
        stack = [state]
        while stack:
            for nxt in adjacency.get(stack.pop(), ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    expanded: List[Tuple[int, Optional[str], int]] = []
    seen_rows: Set[Tuple[int, Optional[str], int]] = set()
    for u, lbl, v in arcs:
        for v2 in sorted(eclose(v)):
            row = (u, lbl, v2)
            if row not in seen_rows:
                seen_rows.add(row)
                expanded.append(row)
    return eclose(start), accept, expanded


# ---------------------------------------------------------------------- #
# the engine


class SqlQueryEngine(QueryEngine):
    """A :class:`QueryEngine` that pushes plan prefixes into SQLite.

    Construction and the public API are identical to the in-memory
    engine; ``pushdown_cutoff`` is the estimated first-operator
    cardinality below which the in-memory operators are kept (0 forces
    pushdown, ``float('inf')`` disables it).  The most recent top-level
    decision is recorded in ``last_pushdown`` for EXPLAIN.
    """

    def __init__(
        self,
        graph: Graph,
        pushdown_cutoff: float = DEFAULT_PUSHDOWN_CUTOFF,
        **kwargs: object,
    ) -> None:
        super().__init__(graph, **kwargs)
        self.pushdown_cutoff = pushdown_cutoff
        self.last_pushdown: Optional[PushdownReport] = None

    # ------------------------------------------------------------ #

    def _run_blocks(
        self,
        ordered: Sequence[Condition],
        rows: List[Row],
        conditions: Sequence[Condition],
        frame: _Frame,
    ) -> List[Row]:
        if not (len(rows) == 1 and all(v is _UNSET for v in rows[0])):
            # nested (seeded) evaluations -- negation verdicts, block
            # sub-queries -- run on the in-memory operators
            return super()._run_blocks(ordered, rows, conditions, frame)
        reason = self._fallback_reason(ordered)
        if reason is None:
            plan = self._compiled_plan(ordered, frame)
            if plan is None:
                reason = "prefix not compilable"
        if reason is not None:
            self.metrics.sql_fallbacks += 1
            self.last_pushdown = PushdownReport(
                pushed=0, total=len(ordered), fallback_reason=reason
            )
            return super()._run_blocks(ordered, rows, conditions, frame)

        metrics = self.metrics
        metrics.sql_pushdowns += 1
        metrics.sql_pushed_conditions += plan.pushed
        metrics.conditions_evaluated += plan.pushed
        if plan.empty:
            fetched: List[Tuple] = []
        else:
            fetched = self.graph._store.query_named(plan.sql, plan.params)
        metrics.sql_rows_fetched += len(fetched)
        rows = self._decode(plan, fetched, frame)
        self.last_pushdown = PushdownReport(
            pushed=plan.pushed, total=len(ordered), sql=plan.sql
        )

        ops: List[OperatorStats] = [
            OperatorStats(
                condition=f"SQL[{plan.pushed} pushed]",
                rows_in=1,
                rows_out=len(rows),
                probes=1,
                dedup_hits=0,
            )
        ]
        if rows:
            for condition in ordered[plan.pushed:]:
                metrics.conditions_evaluated += 1
                rows_in = len(rows)
                probes_before = metrics.hash_join_probes
                dedup_before = metrics.dedup_hits
                rows = self._apply_block(condition, rows, conditions, frame)
                ops.append(
                    OperatorStats(
                        condition=str(condition),
                        rows_in=rows_in,
                        rows_out=len(rows),
                        probes=metrics.hash_join_probes - probes_before,
                        dedup_hits=metrics.dedup_hits - dedup_before,
                    )
                )
                if not rows:
                    break
        self.last_operator_stats = ops
        return rows

    # ------------------------------------------------------------ #

    def _fallback_reason(self, ordered: Sequence[Condition]) -> Optional[str]:
        if not isinstance(self.graph, SqlGraph):
            return "graph is not SQL-backed"
        if not (self.use_blocks and self.use_indexes and self.optimize):
            return "ablation mode"
        if self.adaptive:
            # adaptive replanning learns dedup factors from the
            # in-memory operators; pushdown would starve that feedback
            return "adaptive mode"
        if self.footprint is not None:
            return "footprint recording"
        if not ordered:
            return "empty where-clause"
        cost = estimate_cost(
            ordered[0], set(), self.stats, ordered, use_indexes=True
        )
        if cost < self.pushdown_cutoff:
            return "below cost cutoff"
        return None

    def _compiled_plan(
        self, ordered: Sequence[Condition], frame: _Frame
    ) -> Optional[PushdownPlan]:
        fingerprint = self.stats.fingerprint()
        key = PlanCache.sql_key(
            ordered, frame.names, fingerprint, self.pushdown_cutoff
        )
        cached = self.plan_cache.get_sql(key)
        if cached is not None:
            return cached[0]
        compiler = _Compiler(self.graph, frame)
        compiler.compile(ordered)
        plan = compiler.finalize()
        self.plan_cache.put_sql(key, ordered, plan)
        return plan

    def _decode(
        self, plan: PushdownPlan, fetched: List[Tuple], frame: _Frame
    ) -> List[Row]:
        graph = self.graph
        node_ids: Set[int] = set()
        atom_ids: Set[int] = set()
        for spec in plan.slots:
            kind = spec[0]
            if kind == "node":
                column = spec[1]
                node_ids.update(
                    row[column] for row in fetched if row[column] is not None
                )
            elif kind == "target":
                ncol, acol = spec[1], spec[2]
                node_ids.update(
                    row[ncol] for row in fetched if row[ncol] is not None
                )
                atom_ids.update(
                    row[acol] for row in fetched if row[acol] is not None
                )
        nodes = graph.resolve_nodes(node_ids)
        atoms = graph.resolve_atoms(atom_ids)
        out: List[Row] = []
        intern = sys.intern
        for db_row in fetched:
            values: List[object] = []
            for spec in plan.slots:
                kind = spec[0]
                if kind == "node":
                    values.append(nodes[db_row[spec[1]]])
                elif kind == "target":
                    node_id = db_row[spec[1]]
                    if node_id is not None:
                        values.append(nodes[node_id])
                    else:
                        values.append(atoms[db_row[spec[2]]])
                elif kind == "label":
                    values.append(intern(db_row[spec[1]]))
                elif kind == "const":
                    values.append(spec[1])
                else:
                    values.append(_UNSET)
            out.append(tuple(values))
        return out


def explain_pushdown(engine: QueryEngine) -> str:
    """One-line description of the engine's most recent pushdown
    decision (for EXPLAIN output and diagnostics)."""
    report = getattr(engine, "last_pushdown", None)
    if report is None:
        return "no pushdown-capable evaluation yet"
    return report.describe()


register_engine_factory(
    lambda graph: isinstance(graph, SqlGraph), SqlQueryEngine
)
