"""Strudel's HTML-template language: plain HTML plus SFMT / SIF / SFOR."""

from .ast import (
    AttrExpr,
    Conditional,
    Directives,
    Format,
    Literal,
    Loop,
    Node,
    Template,
)
from .eval import ANCHOR_ATTRIBUTES, PageRegistry, Renderer
from .generator import (
    TEMPLATE_ATTRIBUTE,
    GeneratedSite,
    HtmlGenerator,
    TemplateSet,
    generate_site,
)
from .lint import LintFinding, LintReport, TemplateLinter, lint_templates
from .parser import parse_attr_expr, parse_template

__all__ = [
    "ANCHOR_ATTRIBUTES",
    "AttrExpr",
    "Conditional",
    "Directives",
    "Format",
    "GeneratedSite",
    "HtmlGenerator",
    "LintFinding",
    "LintReport",
    "Literal",
    "TemplateLinter",
    "lint_templates",
    "Loop",
    "Node",
    "PageRegistry",
    "Renderer",
    "TEMPLATE_ATTRIBUTE",
    "Template",
    "TemplateSet",
    "generate_site",
    "parse_attr_expr",
    "parse_template",
]
