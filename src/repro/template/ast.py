"""Abstract syntax of the HTML-template language.

The language (paper section 2.4, Fig. 5) is plain HTML extended with
exactly three expressions, "each of which produces plain HTML text":

* ``<SFMT attr-expr directives...>`` -- format expression;
* ``<SIF attr-expr [op "literal"]> ... <SELSE> ... </SIF>`` -- conditional;
* ``<SFOR var IN attr-expr [DELIM="s"]> ... </SFOR>`` -- enumeration.

An *attribute expression* is "either a single attribute, e.g. Paper, or a
bounded sequence of attributes that reference reachable objects", with
``@var`` referring to an enclosing SFOR binding.

Directives on SFMT:

=========  ==================================================
EMBED      render a referenced internal object inline (its own
           template) instead of as a hyperlink
LINK       force hyperlink rendering of an atomic value
ENUM       render *all* values of the expression, DELIM-joined
UL / OL    shorthand for ENUM emitted as an HTML list
DELIM="s"  separator for ENUM / SFOR
ORDER=     ascend | descend -- sort the values
KEY=attr   sort objects by this attribute's value
COUNT      render the *number* of values instead of the values
           (a small extension beyond the paper's grammar; sites
           routinely need "12 papers" headings)
=========  ==================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


@dataclass(frozen=True)
class AttrExpr:
    """A (possibly ``@``-rooted) dotted attribute path.

    ``var`` is the SFOR variable name when the expression starts with
    ``@var``; ``path`` is the tuple of labels to follow.  ``@a`` alone has
    an empty path.
    """

    path: Tuple[str, ...]
    var: str = ""

    def __str__(self) -> str:
        head = f"@{self.var}" if self.var else ""
        tail = ".".join(self.path)
        if head and tail:
            return f"{head}.{tail}"
        return head or tail


@dataclass(frozen=True)
class Directives:
    """Normalized SFMT directives."""

    embed: bool = False
    link: bool = False
    enum: bool = False
    list_style: str = ""  # "", "ul", "ol"
    delim: Optional[str] = None
    order: str = ""  # "", "ascend", "descend"
    key: str = ""
    count: bool = False

    @property
    def enumerates(self) -> bool:
        return self.enum or bool(self.list_style)


class Node:
    """Base class of template AST nodes."""


@dataclass(frozen=True)
class Literal(Node):
    """A run of plain HTML text, emitted verbatim."""

    text: str


@dataclass(frozen=True)
class Format(Node):
    """``<SFMT expr directives>``."""

    expr: AttrExpr
    directives: Directives = Directives()
    line: int = field(compare=False, default=0)


@dataclass(frozen=True)
class Conditional(Node):
    """``<SIF expr [op "literal"]> then <SELSE> otherwise </SIF>``.

    Without a comparison the test is existence: the expression has at
    least one value.  With ``=`` the test is "some value equals the
    literal (coercing)", with ``!=`` "no value equals the literal".
    """

    expr: AttrExpr
    op: str = ""  # "", "=", "!="
    literal: str = ""
    then_nodes: Tuple[Node, ...] = ()
    else_nodes: Tuple[Node, ...] = ()
    line: int = field(compare=False, default=0)


@dataclass(frozen=True)
class Loop(Node):
    """``<SFOR var IN expr [DELIM="s"]> body </SFOR>``."""

    var: str
    expr: AttrExpr
    body: Tuple[Node, ...] = ()
    delim: str = ""
    line: int = field(compare=False, default=0)


@dataclass
class Template:
    """A parsed template: a name plus its node sequence.

    ``source_lines`` is the non-blank line count -- the measure the paper
    reports site templates in ("17 HTML templates (380 lines)").
    """

    name: str
    nodes: List[Node] = field(default_factory=list)
    source_text: str = ""

    @property
    def source_lines(self) -> int:
        return sum(1 for line in self.source_text.splitlines() if line.strip())
