"""Rendering engine for the HTML-template language.

Given a site-graph object and its template, :class:`Renderer` "evaluates
all expressions in the template, concatenates them together, and produces
plain HTML text" (paper section 2.4).  Internal objects referenced from a
template are, by default, realized as hyperlinks to their own pages; the
``EMBED`` directive overrides this and inlines the referenced object's
rendering.  Which file a hyperlink points at is the
:class:`~repro.template.generator.HtmlGenerator`'s business -- the
renderer only calls back through :class:`PageRegistry`.

Atoms render by flavour: URLs become anchors, image files become ``img``
tags, PostScript files become download links, text files render their
payload as escaped text, HTML files are inlined raw under ``EMBED``.
All other atom text is HTML-escaped; literal template HTML never is.
"""

from __future__ import annotations

import functools
import html
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import TemplateEvaluationError
from ..graph import Atom, AtomType, Graph, Oid, Target, atoms_equal, compare_atoms
from ..resilience.deadline import current_deadline
from .ast import (
    AttrExpr,
    Conditional,
    Directives,
    Format,
    Literal,
    Loop,
    Node,
    Template,
)

#: Attributes probed, in order, for an object's human-readable anchor text.
ANCHOR_ATTRIBUTES = (
    "title", "name", "Name", "label", "heading", "Year", "year",
    "Category", "headline",
)

_DEFAULT_DELIM = ", "
_MAX_EMBED_DEPTH = 16


class PageRegistry:
    """What the renderer needs from the surrounding generator.

    ``href_for`` must return a relative URL for an internal object that
    should be realized as its own page, or ``None`` when the object has no
    renderable page (the renderer then falls back to plain text).
    """

    def href_for(self, oid: Oid) -> Optional[str]:  # pragma: no cover - interface
        raise NotImplementedError

    def template_for(self, oid: Oid) -> Optional[Template]:  # pragma: no cover
        raise NotImplementedError


class _NoPages(PageRegistry):
    """Registry for standalone rendering: everything becomes plain text."""

    def href_for(self, oid: Oid) -> Optional[str]:
        return None

    def template_for(self, oid: Oid) -> Optional[Template]:
        return None


class Renderer:
    """Renders templates against one site graph."""

    def __init__(self, graph: Graph, registry: Optional[PageRegistry] = None) -> None:
        self.graph = graph
        self.registry = registry if registry is not None else _NoPages()

    # ------------------------------------------------------------ #

    def render(self, template: Template, obj: Oid) -> str:
        """Render a full template for one object."""
        return self._render_nodes(template.nodes, obj, {}, ())

    def _render_nodes(
        self,
        nodes: Sequence[Node],
        obj: Oid,
        bindings: Dict[str, Target],
        embed_stack: Tuple[Oid, ...],
    ) -> str:
        pieces: List[str] = []
        deadline = current_deadline()
        for node in nodes:
            if deadline is not None:
                deadline.tick("template.render")
            if isinstance(node, Literal):
                pieces.append(node.text)
            elif isinstance(node, Format):
                pieces.append(self._render_format(node, obj, bindings, embed_stack))
            elif isinstance(node, Conditional):
                pieces.append(self._render_conditional(node, obj, bindings, embed_stack))
            elif isinstance(node, Loop):
                pieces.append(self._render_loop(node, obj, bindings, embed_stack))
            else:
                raise TemplateEvaluationError(f"unknown template node: {node!r}")
        return "".join(pieces)

    # ------------------------------------------------------------ #
    # attribute expressions

    def values_of(
        self, expr: AttrExpr, obj: Oid, bindings: Dict[str, Target]
    ) -> List[Target]:
        """All values of an attribute expression, duplicates removed,
        discovery order preserved."""
        if expr.var:
            bound = bindings.get(expr.var)
            if bound is None:
                raise TemplateEvaluationError(
                    f"@{expr.var} is not bound by an enclosing SFOR"
                )
            current: List[Target] = [bound]
        else:
            current = [obj]
        for label in expr.path:
            next_values: Dict[Target, None] = {}
            for value in current:
                if not isinstance(value, Oid):
                    continue
                for target in self.graph.targets(value, label):
                    next_values.setdefault(target, None)
            current = list(next_values)
        return current

    # ------------------------------------------------------------ #
    # SFMT

    def _render_format(
        self,
        node: Format,
        obj: Oid,
        bindings: Dict[str, Target],
        embed_stack: Tuple[Oid, ...],
    ) -> str:
        values = self.values_of(node.expr, obj, bindings)
        if node.directives.count:
            return str(len(values))
        if node.directives.order:
            values = self._sort(values, node.directives)
        elif len(values) > 1 and all(isinstance(v, Oid) for v in values):
            # canonical order for object-link lists: these are derived by
            # query evaluation, whose row order shifts with the optimizer's
            # statistics, and incremental maintenance appends late arrivals
            # -- rendering must not depend on that insertion history or a
            # maintained site could never be byte-identical to a fresh
            # build.  Atom lists keep discovery order: it mirrors the data
            # graph's edge order, which is meaningful (e.g. author lists).
            values.sort(key=lambda v: v.name)
        if not values:
            return ""
        if not node.directives.enumerates:
            return self._render_value(values[0], node.directives, embed_stack)
        rendered = [self._render_value(v, node.directives, embed_stack) for v in values]
        if node.directives.list_style:
            tag = node.directives.list_style
            items = "".join(f"<li>{piece}</li>" for piece in rendered)
            return f"<{tag}>{items}</{tag}>"
        delim = node.directives.delim
        if delim is None:
            delim = _DEFAULT_DELIM
        return delim.join(rendered)

    def _sort(self, values: List[Target], directives: Directives) -> List[Target]:
        key_label = directives.key

        def sort_atom(value: Target) -> Tuple[int, Atom]:
            if isinstance(value, Atom):
                return (0, value)
            if key_label:
                keyed = self.graph.attribute(value, key_label)
                if isinstance(keyed, Atom):
                    return (0, keyed)
                return (1, Atom(AtomType.STRING, self.anchor_text(value)))
            return (0, Atom(AtomType.STRING, self.anchor_text(value)))

        def compare(left: Target, right: Target) -> int:
            left_rank, left_atom = sort_atom(left)
            right_rank, right_atom = sort_atom(right)
            if left_rank != right_rank:
                return left_rank - right_rank
            return compare_atoms(left_atom, right_atom)

        ordered = sorted(values, key=functools.cmp_to_key(compare))
        if directives.order == "descend":
            ordered.reverse()
        return ordered

    # ------------------------------------------------------------ #
    # value rendering

    def _render_value(
        self, value: Target, directives: Directives, embed_stack: Tuple[Oid, ...]
    ) -> str:
        if isinstance(value, Oid):
            return self._render_object(value, directives, embed_stack)
        return self._render_atom(value, directives)

    def _render_object(
        self, oid: Oid, directives: Directives, embed_stack: Tuple[Oid, ...]
    ) -> str:
        if directives.embed:
            if oid in embed_stack or len(embed_stack) >= _MAX_EMBED_DEPTH:
                return self._object_link_or_text(oid)
            template = self.registry.template_for(oid)
            if template is not None:
                return self._render_nodes(
                    template.nodes, oid, {}, embed_stack + (oid,)
                )
            return html.escape(self.anchor_text(oid))
        return self._object_link_or_text(oid)

    def _object_link_or_text(self, oid: Oid) -> str:
        href = self.registry.href_for(oid)
        anchor = html.escape(self.anchor_text(oid))
        if href is None:
            return anchor
        return f'<a href="{html.escape(href, quote=True)}">{anchor}</a>'

    def anchor_text(self, oid: Oid) -> str:
        """Human-readable text for an object: its first naming attribute,
        falling back to the oid name."""
        for label in ANCHOR_ATTRIBUTES:
            value = self.graph.attribute(oid, label)
            if isinstance(value, Atom):
                return value.as_string()
        return oid.name

    def _render_atom(self, atom: Atom, directives: Directives) -> str:
        text = html.escape(atom.as_string())
        quoted = html.escape(atom.as_string(), quote=True)
        if atom.type is AtomType.URL:
            return f'<a href="{quoted}">{text}</a>'
        if atom.type is AtomType.IMAGE_FILE:
            return f'<img src="{quoted}" alt="{quoted}">'
        if atom.type is AtomType.POSTSCRIPT_FILE:
            return f'<a href="{quoted}">[PostScript]</a>'
        if atom.type is AtomType.HTML_FILE:
            if directives.embed:
                return atom.as_string()  # raw HTML payload, inlined
            return f'<a href="{quoted}">[HTML]</a>'
        if directives.link:
            return f'<a href="{quoted}">{text}</a>'
        return text

    # ------------------------------------------------------------ #
    # SIF / SFOR

    def _render_conditional(
        self,
        node: Conditional,
        obj: Oid,
        bindings: Dict[str, Target],
        embed_stack: Tuple[Oid, ...],
    ) -> str:
        values = self.values_of(node.expr, obj, bindings)
        if node.op:
            literal = Atom(AtomType.STRING, node.literal)
            matched = any(
                isinstance(v, Atom) and atoms_equal(v, literal) for v in values
            )
            truth = matched if node.op == "=" else not matched
        else:
            truth = bool(values)
        chosen = node.then_nodes if truth else node.else_nodes
        return self._render_nodes(chosen, obj, bindings, embed_stack)

    def _render_loop(
        self,
        node: Loop,
        obj: Oid,
        bindings: Dict[str, Target],
        embed_stack: Tuple[Oid, ...],
    ) -> str:
        values = self.values_of(node.expr, obj, bindings)
        pieces: List[str] = []
        for value in values:
            extended = dict(bindings)
            extended[node.var] = value
            pieces.append(self._render_nodes(node.body, obj, extended, embed_stack))
        return node.delim.join(pieces)
