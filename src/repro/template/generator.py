"""The HTML generator: site graph + templates -> browsable web site.

"The HTML generator takes as input a site graph and a set of HTML
templates.  For every internal object, the generator selects a
HTML-template file for the object: either (1) an object-specific file,
(2) the value of the object's HTML-template attribute, or (3) the
template file associated with the collection to which the object
belongs" (paper section 2.4).  :class:`TemplateSet` implements exactly
that selection rule; :class:`HtmlGenerator` drives page generation.

"The choice to realize internal objects as pages or as page components is
delayed until HTML generation": an object referenced through ``SFMT``
without ``EMBED`` and having a resolvable template is realized as a page
(and transitively rendered); with ``EMBED`` it is inlined; with no
template it degrades to plain text.
"""

from __future__ import annotations

import html
import os
import re
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..errors import TemplateResolutionError
from ..graph import Atom, Graph, Oid
from .ast import Template
from .eval import PageRegistry, Renderer
from .parser import parse_template

#: The attribute whose value names an object's template (selection rule 2).
TEMPLATE_ATTRIBUTE = "HTML-template"


class TemplateSet:
    """A named set of parsed templates with the 3-level selection rule."""

    def __init__(self) -> None:
        self._templates: Dict[str, Template] = {}
        self._object_templates: Dict[str, str] = {}
        self._collection_templates: Dict[str, str] = {}
        self._default: str = ""

    # ------------------------------------------------------------ #
    # registration

    def add(self, name: str, text: str) -> Template:
        """Parse and register a template under ``name``."""
        template = parse_template(text, name)
        self._templates[name] = template
        return template

    def add_file(self, path: str, name: str = "") -> Template:
        """Load a template from a ``.tmpl`` file; default name is the stem."""
        if not name:
            name = os.path.splitext(os.path.basename(path))[0]
        with open(path, "r", encoding="utf-8") as handle:
            return self.add(name, handle.read())

    def for_object(self, oid_name: str, template_name: str) -> None:
        """Selection rule 1: an object-specific template."""
        self._require(template_name)
        self._object_templates[oid_name] = template_name

    def for_collection(self, collection: str, template_name: str) -> None:
        """Selection rule 3: the template of a collection.

        "Associating an HTML template with a collection of objects allows
        the user to produce the same look and feel for related pages."
        """
        self._require(template_name)
        self._collection_templates[collection] = template_name

    def set_default(self, template_name: str) -> None:
        """Optional last-resort template (an extension beyond the paper's
        three rules, used by generic tooling)."""
        self._require(template_name)
        self._default = template_name

    def _require(self, name: str) -> None:
        if name not in self._templates:
            raise TemplateResolutionError(f"unknown template {name!r}")

    # ------------------------------------------------------------ #
    # introspection

    def get(self, name: str) -> Optional[Template]:
        return self._templates.get(name)

    def names(self) -> List[str]:
        return sorted(self._templates)

    def template_count(self) -> int:
        return len(self._templates)

    def total_source_lines(self) -> int:
        """Sum of non-blank template lines (the paper's template-size
        measure)."""
        return sum(t.source_lines for t in self._templates.values())

    # ------------------------------------------------------------ #
    # selection

    def resolve(self, graph: Graph, oid: Oid) -> Optional[Template]:
        """Apply the paper's selection rule; None when nothing applies."""
        specific = self._object_templates.get(oid.name)
        if specific:
            return self._templates[specific]
        attribute = graph.attribute(oid, TEMPLATE_ATTRIBUTE)
        if isinstance(attribute, Atom):
            named = self._templates.get(attribute.as_string())
            if named is not None:
                return named
        for collection in graph.collections_of(oid):
            assigned = self._collection_templates.get(collection)
            if assigned:
                return self._templates[assigned]
        if self._default:
            return self._templates[self._default]
        return None


class GeneratedSite:
    """The browsable result: a set of cross-linked HTML pages."""

    def __init__(self, name: str = "site") -> None:
        self.name = name
        self.pages: Dict[str, str] = {}
        self.filenames: Dict[Oid, str] = {}

    @property
    def page_count(self) -> int:
        return len(self.pages)

    def page_for(self, oid: Oid) -> Optional[str]:
        """The HTML of an object's page, if it was realized as one."""
        filename = self.filenames.get(oid)
        return self.pages.get(filename) if filename else None

    def write(self, directory: str) -> List[str]:
        """Write every page under ``directory``; returns the paths."""
        os.makedirs(directory, exist_ok=True)
        written: List[str] = []
        for filename, content in self.pages.items():
            path = os.path.join(directory, filename)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(content)
            written.append(path)
        return written

    def internal_hrefs(self) -> List[Tuple[str, str]]:
        """All (page, href) pairs for hrefs pointing at local .html files."""
        found: List[Tuple[str, str]] = []
        for filename, content in self.pages.items():
            for href in re.findall(r'href="([^"]+)"', content):
                if href.endswith(".html") and "://" not in href:
                    found.append((filename, href))
        return found

    def dangling_links(self) -> List[Tuple[str, str]]:
        """Internal hrefs whose target page does not exist."""
        return [
            (page, href)
            for page, href in self.internal_hrefs()
            if href not in self.pages
        ]


class _DetachedRegistry(PageRegistry):
    """Per-worker registry for one parallel page render.

    Rendering in a thread must not mutate the generator's shared
    filename table, so pages not yet assigned a filename get a
    placeholder href token instead (``\\x00refN\\x00`` -- no
    HTML-escapable characters, so it passes through the renderer's
    escaping untouched).  The merge step assigns real filenames in
    deterministic order and substitutes them back in.
    """

    __slots__ = ("generator", "tokens", "new_refs")

    def __init__(self, generator: "HtmlGenerator") -> None:
        self.generator = generator
        #: oid -> placeholder token used in this page's html
        self.tokens: Dict[Oid, str] = {}
        #: first-reference (document) order of not-yet-assigned pages
        self.new_refs: List[Oid] = []

    def href_for(self, oid: Oid) -> Optional[str]:
        generator = self.generator
        if generator.templates.resolve(generator.graph, oid) is None:
            return None
        existing = generator._filenames.get(oid)
        if existing is not None:
            return existing
        token = self.tokens.get(oid)
        if token is None:
            token = f"\x00ref{len(self.new_refs)}\x00"
            self.tokens[oid] = token
            self.new_refs.append(oid)
        return token

    def template_for(self, oid: Oid) -> Optional[Template]:
        return self.generator.templates.resolve(self.generator.graph, oid)


class HtmlGenerator(PageRegistry):
    """Generates a :class:`GeneratedSite` from a site graph and templates.

    ``roots`` seeds the page worklist (oids, Skolem-term names, or
    collection names); every object reachable through non-EMBED template
    references with a resolvable template becomes a page.  The first root
    is emitted as ``index.html``.
    """

    def __init__(self, graph: Graph, templates: TemplateSet) -> None:
        self.graph = graph
        self.templates = templates
        self._renderer = Renderer(graph, registry=self)
        self._filenames: Dict[Oid, str] = {}
        self._used_names: Dict[str, int] = {}
        self._queue: deque = deque()
        self._index_assigned = False

    # ------------------------------------------------------------ #
    # PageRegistry interface (called back by the renderer)

    def href_for(self, oid: Oid) -> Optional[str]:
        if self.templates.resolve(self.graph, oid) is None:
            return None
        return self._assign_filename(oid)

    def template_for(self, oid: Oid) -> Optional[Template]:
        return self.templates.resolve(self.graph, oid)

    # ------------------------------------------------------------ #

    def generate(
        self,
        roots: Iterable[Union[Oid, str]],
        site_name: str = "site",
        workers: Optional[int] = None,
        metrics: Optional[object] = None,
    ) -> GeneratedSite:
        """Render all pages reachable from ``roots``.

        ``workers`` > 1 renders each wave of discovered pages on a
        thread pool (graph reads are pure during a wave), then merges
        results in queue order, replaying filename assignment exactly as
        the serial generator would -- the output is byte-identical to
        ``workers=None``.  ``metrics`` (a
        :class:`~repro.struql.eval.Metrics`) counts parallel renders.
        """
        site = GeneratedSite(site_name)
        for root in roots:
            for oid in self._resolve_root(root):
                self._assign_filename(oid)
        if workers is not None and workers > 1:
            self._generate_parallel(site, workers, metrics)
        else:
            rendered: Dict[Oid, None] = {}
            while self._queue:
                oid = self._queue.popleft()
                if oid in rendered:
                    continue
                rendered[oid] = None
                site.pages[self._filenames[oid]] = self._render_page(oid)
        site.filenames = dict(self._filenames)
        return site

    def _render_page(self, oid: Oid) -> str:
        """Render one page serially (subclass hook: the selective
        regenerator overrides this to record per-page read sets)."""
        template = self._require_template(oid)
        return self._renderer.render(template, oid)

    def _require_template(self, oid: Oid) -> Template:
        template = self.templates.resolve(self.graph, oid)
        if template is None:
            raise TemplateResolutionError(
                f"no template for page object {oid} "
                "(no object-specific file, HTML-template attribute, or "
                "collection template applies)"
            )
        return template

    def _generate_parallel(
        self, site: GeneratedSite, workers: int, metrics: Optional[object]
    ) -> None:
        """Wave-based parallel rendering with a deterministic merge.

        Each wave drains the queue (the pages discovered so far but not
        rendered), renders them concurrently against detached
        registries, then -- in wave order, and within a page in
        first-reference document order -- assigns filenames to newly
        discovered pages and substitutes them for the placeholder
        tokens.  That replay order is exactly the serial generator's
        assignment order, which is what makes the output byte-identical.
        """
        rendered: Dict[Oid, None] = {}
        with ThreadPoolExecutor(max_workers=workers) as pool:
            while self._queue:
                wave: List[Oid] = []
                while self._queue:
                    oid = self._queue.popleft()
                    if oid not in rendered:
                        rendered[oid] = None
                        wave.append(oid)
                for oid, (text, registry) in zip(
                    wave, pool.map(self._render_detached, wave)
                ):
                    for ref in registry.new_refs:
                        self._assign_filename(ref)
                    for ref, token in registry.tokens.items():
                        text = text.replace(
                            token, html.escape(self._filenames[ref], quote=True)
                        )
                    site.pages[self._filenames[oid]] = text
                    if metrics is not None:
                        metrics.pages_rendered_parallel += 1

    def _render_detached(self, oid: Oid) -> Tuple[str, _DetachedRegistry]:
        template = self._require_template(oid)
        registry = _DetachedRegistry(self)
        return Renderer(self.graph, registry=registry).render(template, oid), registry

    def _resolve_root(self, root: Union[Oid, str]) -> List[Oid]:
        if isinstance(root, Oid):
            return [root]
        if self.graph.has_collection(root):
            return self.graph.collection(root)
        oid = Oid(root)
        if self.graph.has_node(oid):
            return [oid]
        skolem_root = Oid(f"{root}()")
        if self.graph.has_node(skolem_root):
            return [skolem_root]
        raise TemplateResolutionError(
            f"root {root!r} names neither a collection nor an object"
        )

    def _assign_filename(self, oid: Oid) -> str:
        existing = self._filenames.get(oid)
        if existing is not None:
            return existing
        if not self._index_assigned:
            filename = "index.html"
            self._index_assigned = True
        else:
            filename = self._sanitize(oid.name)
        self._filenames[oid] = filename
        self._queue.append(oid)
        return filename

    def _sanitize(self, name: str) -> str:
        stem = re.sub(r"[^A-Za-z0-9_\-]+", "_", name).strip("_") or "page"
        count = self._used_names.get(stem, 0)
        self._used_names[stem] = count + 1
        if count:
            stem = f"{stem}_{count}"
        return stem + ".html"


def generate_site(
    graph: Graph,
    templates: TemplateSet,
    roots: Iterable[Union[Oid, str]],
    site_name: str = "site",
    workers: Optional[int] = None,
    metrics: Optional[object] = None,
) -> GeneratedSite:
    """One-shot convenience wrapper around :class:`HtmlGenerator`."""
    return HtmlGenerator(graph, templates).generate(
        roots, site_name, workers=workers, metrics=metrics
    )
