"""Static template linting against a site schema.

The audit module finds attribute-name typos at *generation* time (empty
pages); this linter finds them **before any site is built**, by checking
every template's attribute expressions against the site schema's edges
-- the same move the paper makes for integrity constraints ("a simple
analysis of the query can infer the site schema", section 2.5).

For each template assigned to a page type (a Skolem function, via the
collections it is collected into, or object-specific assignment), the
linter walks the template's attribute expressions step by step through
the schema: a step labeled L from function F is *resolvable* if some
schema edge F -L-> _ exists; a function with an arc-variable edge (its
labels are data-dependent) makes every step from it *unknowable* rather
than wrong.  Findings:

* ``unknown-attribute`` -- the step matches no schema edge and the
  function has no arc-variable edges: a typo, the page will render
  empty there;
* ``unknowable`` (informational) -- the step could not be checked
  because the labels at that point depend on data.

SFOR variables are tracked so ``@a.title`` is checked against where
``a`` can point.  Comparisons inside SIF are checked through the same
expression machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.schema import NS, SiteSchema
from .ast import AttrExpr, Conditional, Format, Loop, Node, Template
from .generator import TemplateSet

#: endpoint marker for data-graph / atomic values (nothing to follow).
_DATA = "<data>"


@dataclass(frozen=True)
class LintFinding:
    """One problem (or unknowability note) in one template."""

    template: str
    expression: str
    severity: str  # "error" | "info"
    kind: str  # "unknown-attribute" | "unknowable"
    detail: str
    #: 1-based source line of the offending tag (0 when unknown).  Kept
    #: out of equality so repeated findings still deduplicate.
    line: int = field(compare=False, default=0)

    def __str__(self) -> str:
        where = f":{self.line}" if self.line else ""
        return (
            f"[{self.severity}] {self.template}{where}: "
            f"<SFMT-ish {self.expression}> -- {self.kind}: {self.detail}"
        )


@dataclass
class LintReport:
    findings: List[LintFinding] = field(default_factory=list)

    @property
    def errors(self) -> List[LintFinding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        infos = len(self.findings) - len(self.errors)
        return (
            f"{len(self.errors)} error(s), {infos} unknowable expression(s)"
        )


class TemplateLinter:
    """Checks one TemplateSet against one SiteSchema."""

    def __init__(self, templates: TemplateSet, schema: SiteSchema) -> None:
        self.templates = templates
        self.schema = schema
        # function -> constant labels leaving it
        self._labels: Dict[str, Set[str]] = {}
        # functions with data-dependent (arc variable) labels
        self._open_functions: Set[str] = set()
        for function in schema.functions:
            labels: Set[str] = set()
            for edge in schema.edges_from(function):
                if edge.label_is_variable:
                    self._open_functions.add(function)
                else:
                    labels.add(edge.label)
            self._labels[function] = labels

    # ------------------------------------------------------------ #

    def lint(self) -> LintReport:
        """Lint every template against every page type it is assigned to."""
        report = LintReport()
        for template_name, functions in self._assignments().items():
            template = self.templates.get(template_name)
            if template is None:
                continue
            for function in functions:
                self._lint_nodes(
                    template.nodes, template, frozenset({function}), {}, report
                )
        return report

    def _assignments(self) -> Dict[str, List[str]]:
        """template name -> Skolem functions it renders."""
        out: Dict[str, List[str]] = {}
        for collection, template_name in self.templates._collection_templates.items():
            for function in self.schema.functions_of_class(collection):
                out.setdefault(template_name, []).append(function)
        for oid_name, template_name in self.templates._object_templates.items():
            function = oid_name.split("(", 1)[0]
            if function in self.schema.functions:
                out.setdefault(template_name, []).append(function)
        return out

    # ------------------------------------------------------------ #

    def _lint_nodes(
        self,
        nodes: Sequence[Node],
        template: Template,
        context: FrozenSet[str],
        loop_vars: Dict[str, FrozenSet[str]],
        report: LintReport,
    ) -> None:
        for node in nodes:
            if isinstance(node, Format):
                self._check_expr(
                    node.expr, template, context, loop_vars, report, node.line
                )
            elif isinstance(node, Conditional):
                self._check_expr(
                    node.expr, template, context, loop_vars, report, node.line
                )
                self._lint_nodes(node.then_nodes, template, context, loop_vars, report)
                self._lint_nodes(node.else_nodes, template, context, loop_vars, report)
            elif isinstance(node, Loop):
                endpoints = self._check_expr(
                    node.expr, template, context, loop_vars, report, node.line
                )
                extended = dict(loop_vars)
                extended[node.var] = endpoints
                self._lint_nodes(node.body, template, context, extended, report)

    def _check_expr(
        self,
        expr: AttrExpr,
        template: Template,
        context: FrozenSet[str],
        loop_vars: Dict[str, FrozenSet[str]],
        report: LintReport,
        line: int = 0,
    ) -> FrozenSet[str]:
        """Walk an attribute expression through the schema; returns the
        reachable endpoint functions (for loop-variable tracking)."""
        if expr.var:
            current = loop_vars.get(expr.var, frozenset())
        else:
            current = context
        for position, label in enumerate(expr.path):
            if not current or _DATA in current:
                return frozenset()  # walked off into data: unknowable
            next_functions: Set[str] = set()
            matched = False
            for function in current:
                for edge in self.schema.edges_from(function):
                    if edge.label_is_variable or edge.label != label:
                        continue
                    matched = True
                    next_functions.add(
                        _DATA if edge.target == NS else edge.target
                    )
            if not matched:
                if any(f in self._open_functions for f in current):
                    # the label may still exist: it can be copied by an
                    # arc-variable link clause, which only the data decides
                    self._note(
                        report,
                        template,
                        expr,
                        severity="info",
                        kind="unknowable",
                        detail=(
                            f"{label!r} not produced by any constant link "
                            f"clause on {sorted(current)}, but arc-variable "
                            "clauses may copy it from the data"
                        ),
                        line=line,
                    )
                else:
                    self._note(
                        report,
                        template,
                        expr,
                        severity="error",
                        kind="unknown-attribute",
                        detail=(
                            f"no link clause produces {label!r} on "
                            f"{sorted(current)} (step {position + 1})"
                        ),
                        line=line,
                    )
                return frozenset()
            current = frozenset(next_functions)
        return current

    @staticmethod
    def _note(
        report: LintReport,
        template: Template,
        expr: AttrExpr,
        severity: str,
        kind: str,
        detail: str,
        line: int = 0,
    ) -> None:
        finding = LintFinding(
            template=template.name,
            expression=str(expr),
            severity=severity,
            kind=kind,
            detail=detail,
            line=line,
        )
        if finding not in report.findings:
            report.findings.append(finding)


def lint_templates(templates: TemplateSet, schema: SiteSchema) -> LintReport:
    """One-shot convenience wrapper."""
    return TemplateLinter(templates, schema).lint()
