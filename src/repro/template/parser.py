"""Parser for the HTML-template language.

The template text is scanned left to right; everything outside the five
special tags (``<SFMT ...>``, ``<SIF ...>``, ``<SELSE>``, ``</SIF>``,
``<SFOR ...>``, ``</SFOR>``) is literal HTML.  Tag names and directive
keywords are case-insensitive, attribute labels are case-sensitive (they
name graph edges).

Attribute-expression syntax inside tags::

    attr-expr ::= ["@" ident] ("." segment)*    -- when @-rooted
                | segment ("." segment)*        -- otherwise
    segment   ::= ident | quoted-string         -- quoting admits labels
                                                   like "HTML-template"
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..errors import TemplateSyntaxError
from .ast import (
    AttrExpr,
    Conditional,
    Directives,
    Format,
    Literal,
    Loop,
    Node,
    Template,
)

_TAG_OPEN = re.compile(r"<(/?)(SFMT|SIF|SELSE|SFOR)\b", re.IGNORECASE)
_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_\-]*")

_DIRECTIVE_FLAGS = frozenset({"EMBED", "LINK", "ENUM", "UL", "OL", "COUNT"})
_DIRECTIVE_VALUED = frozenset({"DELIM", "ORDER", "KEY"})


def parse_template(text: str, name: str = "") -> Template:
    """Parse template text into a :class:`Template`."""
    parser = _TemplateParser(text)
    nodes, terminator = parser.parse_nodes(stop_at=())
    assert terminator is None
    return Template(name=name, nodes=nodes, source_text=text)


class _TemplateParser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._position = 0

    def _line(self, position: Optional[int] = None) -> int:
        where = self._position if position is None else position
        return self._text.count("\n", 0, where) + 1

    # ---------------------------------------------------------------- #

    def parse_nodes(self, stop_at: Tuple[str, ...]) -> Tuple[List[Node], Optional[str]]:
        """Parse until EOF or one of ``stop_at`` tags (returned, consumed)."""
        nodes: List[Node] = []
        while True:
            match = _TAG_OPEN.search(self._text, self._position)
            if match is None:
                tail = self._text[self._position :]
                if tail:
                    nodes.append(Literal(tail))
                self._position = len(self._text)
                if stop_at:
                    raise TemplateSyntaxError(
                        f"missing closing tag (expected one of {', '.join(stop_at)})",
                        self._line(),
                    )
                return nodes, None
            if match.start() > self._position:
                nodes.append(Literal(self._text[self._position : match.start()]))
            tag = ("/" if match.group(1) else "") + match.group(2).upper()
            self._position = match.start()
            if tag in stop_at:
                self._consume_tag()
                return nodes, tag
            if tag == "SFMT":
                nodes.append(self._parse_sfmt())
            elif tag == "SIF":
                nodes.append(self._parse_sif())
            elif tag == "SFOR":
                nodes.append(self._parse_sfor())
            else:
                raise TemplateSyntaxError(
                    f"unexpected tag {tag} here", self._line(match.start())
                )

    # ---------------------------------------------------------------- #
    # tag readers

    def _consume_tag(self) -> str:
        """Consume ``<...>`` starting at the current position and return
        its inner text (between the tag name start and ``>``).

        A ``>`` inside a double-quoted directive value (``DELIM="<hr>"``)
        does not terminate the tag.
        """
        start = self._position
        index = start + 1
        in_quote = False
        while index < len(self._text):
            char = self._text[index]
            if in_quote:
                if char == "\\":
                    index += 2
                    continue
                if char == '"':
                    in_quote = False
            elif char == '"':
                in_quote = True
            elif char == ">":
                inner = self._text[start + 1 : index]
                self._position = index + 1
                return inner
            index += 1
        raise TemplateSyntaxError("unterminated tag", self._line(start))

    def _parse_sfmt(self) -> Node:
        line = self._line()
        inner = self._consume_tag()
        body = inner[len("SFMT") :].strip()
        expr_text, rest = _split_leading_expr(body, line)
        expr = parse_attr_expr(expr_text, line)
        directives = _parse_directives(rest, line)
        return Format(expr=expr, directives=directives, line=line)

    def _parse_sif(self) -> Node:
        line = self._line()
        inner = self._consume_tag()
        body = inner[len("SIF") :].strip()
        expr_text, rest = _split_leading_expr(body, line)
        expr = parse_attr_expr(expr_text, line)
        op, literal = "", ""
        rest = rest.strip()
        if rest:
            comparison = re.fullmatch(r"(!?=)\s*\"((?:[^\"\\]|\\.)*)\"", rest)
            if comparison is None:
                raise TemplateSyntaxError(
                    f"bad SIF comparison: {rest!r}", line
                )
            op = comparison.group(1)
            literal = _unescape(comparison.group(2))
        then_nodes, terminator = self.parse_nodes(stop_at=("SELSE", "/SIF"))
        else_nodes: List[Node] = []
        if terminator == "SELSE":
            else_nodes, terminator = self.parse_nodes(stop_at=("/SIF",))
        return Conditional(
            expr=expr,
            op=op,
            literal=literal,
            then_nodes=tuple(then_nodes),
            else_nodes=tuple(else_nodes),
            line=line,
        )

    def _parse_sfor(self) -> Node:
        line = self._line()
        inner = self._consume_tag()
        body = inner[len("SFOR") :].strip()
        match = re.match(r"([A-Za-z_][A-Za-z0-9_]*)\s+IN\s+", body, re.IGNORECASE)
        if match is None:
            raise TemplateSyntaxError("SFOR must be '<SFOR var IN expr ...>'", line)
        var = match.group(1)
        remainder = body[match.end() :]
        expr_text, rest = _split_leading_expr(remainder, line)
        expr = parse_attr_expr(expr_text, line)
        directives = _parse_directives(rest, line)
        nodes, _ = self.parse_nodes(stop_at=("/SFOR",))
        return Loop(
            var=var,
            expr=expr,
            body=tuple(nodes),
            delim=directives.delim or "",
            line=line,
        )


# -------------------------------------------------------------------- #
# expression and directive parsing


def _split_leading_expr(text: str, line: int) -> Tuple[str, str]:
    """Split ``text`` into the leading attribute expression and the rest.

    The expression extends through identifiers, ``@``, ``.`` and quoted
    segments; it stops at whitespace outside quotes.
    """
    text = text.lstrip()
    if not text:
        raise TemplateSyntaxError("missing attribute expression", line)
    index = 0
    in_quote = False
    while index < len(text):
        char = text[index]
        if in_quote:
            if char == "\\":
                index += 2
                continue
            if char == '"':
                in_quote = False
            index += 1
            continue
        if char == '"':
            in_quote = True
            index += 1
            continue
        if char.isspace():
            break
        index += 1
    if in_quote:
        raise TemplateSyntaxError("unterminated quoted label", line)
    return text[:index], text[index:]


def parse_attr_expr(text: str, line: int = 0) -> AttrExpr:
    """Parse an attribute expression like ``Paper``, ``@a.title`` or
    ``"HTML-template"``."""
    text = text.strip()
    if not text:
        raise TemplateSyntaxError("empty attribute expression", line)
    var = ""
    if text.startswith("@"):
        match = _IDENT.match(text, 1)
        if match is None:
            raise TemplateSyntaxError(f"bad loop-variable reference {text!r}", line)
        var = match.group(0)
        text = text[match.end() :]
        if text.startswith("."):
            text = text[1:]
        elif text:
            raise TemplateSyntaxError(f"bad attribute expression after @{var}", line)
    segments: List[str] = []
    position = 0
    while position < len(text):
        if text[position] == '"':
            end = position + 1
            value: List[str] = []
            while end < len(text) and text[end] != '"':
                if text[end] == "\\" and end + 1 < len(text):
                    value.append(text[end + 1])
                    end += 2
                    continue
                value.append(text[end])
                end += 1
            if end >= len(text):
                raise TemplateSyntaxError("unterminated quoted label", line)
            segments.append("".join(value))
            position = end + 1
        else:
            match = _IDENT.match(text, position)
            if match is None:
                raise TemplateSyntaxError(
                    f"bad attribute expression near {text[position:]!r}", line
                )
            segments.append(match.group(0))
            position = match.end()
        if position < len(text):
            if text[position] != ".":
                raise TemplateSyntaxError(
                    f"expected '.' in attribute expression, got {text[position]!r}", line
                )
            position += 1
    if not segments and not var:
        raise TemplateSyntaxError("empty attribute expression", line)
    return AttrExpr(path=tuple(segments), var=var)


def _unescape(text: str) -> str:
    return re.sub(r"\\(.)", r"\1", text)


def _parse_directives(text: str, line: int) -> Directives:
    embed = link = enum = count = False
    list_style = ""
    delim: Optional[str] = None
    order = ""
    key = ""
    position = 0
    text = text.strip()
    while position < len(text):
        if text[position].isspace():
            position += 1
            continue
        match = _IDENT.match(text, position)
        if match is None:
            raise TemplateSyntaxError(f"bad directive near {text[position:]!r}", line)
        word = match.group(0).upper()
        position = match.end()
        if word in _DIRECTIVE_FLAGS:
            if word == "EMBED":
                embed = True
            elif word == "LINK":
                link = True
            elif word == "ENUM":
                enum = True
            elif word == "COUNT":
                count = True
            else:
                list_style = word.lower()
            continue
        if word in _DIRECTIVE_VALUED:
            if position >= len(text) or text[position] != "=":
                raise TemplateSyntaxError(f"directive {word} needs '=value'", line)
            position += 1
            if word == "DELIM":
                if position >= len(text) or text[position] != '"':
                    raise TemplateSyntaxError('DELIM value must be quoted', line)
                end = text.find('"', position + 1)
                while end > 0 and text[end - 1] == "\\":
                    end = text.find('"', end + 1)
                if end < 0:
                    raise TemplateSyntaxError("unterminated DELIM value", line)
                delim = _unescape(text[position + 1 : end])
                position = end + 1
                continue
            value_match = _IDENT.match(text, position)
            if value_match is None:
                raise TemplateSyntaxError(f"directive {word} needs a value", line)
            value = value_match.group(0)
            position = value_match.end()
            if word == "ORDER":
                lowered = value.lower()
                if lowered not in ("ascend", "descend"):
                    raise TemplateSyntaxError(
                        "ORDER must be ascend or descend", line
                    )
                order = lowered
            else:
                key = value
            continue
        raise TemplateSyntaxError(f"unknown directive {word!r}", line)
    return Directives(
        embed=embed, link=link, enum=enum, list_style=list_style,
        delim=delim, order=order, key=key, count=count,
    )
