"""Synthetic workloads shaped like the paper's sites (see DESIGN.md for
the substitution rationale: we cannot ship AT&T/CNN/author data, so we
generate data of the same shape and scale)."""

from .bibliography import (
    HOMEPAGE_QUERY,
    bibliography_graph,
    generate_entries,
    homepage_templates,
)
from .news import (
    CATEGORIES,
    NEWS_SITE_QUERY,
    SPORTS_SITE_QUERY,
    article_pages,
    news_graph,
    news_graph_from_pages,
    news_templates,
)
from .orgsite import (
    GAV_MAPPINGS,
    build_mediator,
    departments_table,
    lab_facts_ddl,
    legacy_pages,
    personnel_table,
    projects_text,
)

__all__ = [
    "CATEGORIES",
    "GAV_MAPPINGS",
    "HOMEPAGE_QUERY",
    "NEWS_SITE_QUERY",
    "SPORTS_SITE_QUERY",
    "article_pages",
    "bibliography_graph",
    "build_mediator",
    "departments_table",
    "generate_entries",
    "homepage_templates",
    "lab_facts_ddl",
    "legacy_pages",
    "news_graph",
    "news_graph_from_pages",
    "news_templates",
    "personnel_table",
    "projects_text",
]
