"""Synthetic bibliographies: the paper's homepage-site workload.

The authors' own BibTeX files drove the running example (section 2.3)
and the personal home pages (section 5.1).  We cannot ship their
bibliographies, so this generator produces BibTeX text with the same
*shape*, including every irregularity section 6.3 calls out:

* ``month`` present on some entries and missing on others;
* ``journal`` on articles vs. ``booktitle`` on conference papers
  ("the 'journal' attribute is meaningful for journal papers, but not
  conference papers");
* optional ``abstract`` / ``postscript`` / ``url`` fields;
* 1-4 authors per entry, drawn from a shared name pool so that
  cross-source joins (org-site publications) have matches.

Everything is deterministic given ``seed``.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..graph import Graph
from ..wrappers import BibtexWrapper

FIRST_NAMES = [
    "Mary", "Daniela", "Jaewoo", "Alon", "Dan", "Serge", "Victor", "Peter",
    "Susan", "Hector", "Jennifer", "Jeff", "David", "Laura", "Rick", "Anne",
]
LAST_NAMES = [
    "Fernandez", "Florescu", "Kang", "Levy", "Suciu", "Abiteboul", "Vianu",
    "Buneman", "Davidson", "Garcia-Molina", "Widom", "Ullman", "Maier",
    "Haas", "Hull", "Deutsch",
]
TITLE_HEADS = [
    "A Query Language for", "Optimizing", "Managing", "Declarative",
    "Incremental Evaluation of", "Wrapping", "Integrating", "Indexing",
    "Schemas for", "Views over",
]
TITLE_TAILS = [
    "Semistructured Data", "Web Sites", "Labeled Graphs", "Heterogeneous Sources",
    "Site Graphs", "Mediated Views", "Path Expressions", "HTML Repositories",
    "Data Warehouses", "Query Plans",
]
JOURNALS = [
    "ACM TODS", "VLDB Journal", "Information Systems", "SIGMOD Record",
]
CONFERENCES = [
    "SIGMOD", "VLDB", "ICDE", "PODS", "EDBT",
]
CATEGORIES = [
    "semistructured", "web", "integration", "optimization", "languages",
]

DEFAULT_YEARS = (1990, 1998)


def generate_entries(
    count: int,
    seed: int = 0,
    years: Sequence[int] = DEFAULT_YEARS,
    month_rate: float = 0.5,
    abstract_rate: float = 0.7,
    postscript_rate: float = 0.6,
    url_rate: float = 0.3,
    category_rate: float = 0.9,
    author_pool: Optional[List[str]] = None,
) -> str:
    """Generate ``count`` BibTeX entries as text.

    The ``*_rate`` knobs control attribute irregularity; experiment E8
    sweeps them.  ``author_pool`` overrides the default full-name pool.
    """
    rng = random.Random(seed)
    if author_pool is None:
        author_pool = [
            f"{first} {last}" for first in FIRST_NAMES for last in LAST_NAMES
        ]
    months = "jan feb mar apr may jun jul aug sep oct nov dec".split()
    pieces: List[str] = []
    for index in range(count):
        is_article = rng.random() < 0.4
        entry_type = "article" if is_article else "inproceedings"
        key = f"pub{index}"
        title = f"{rng.choice(TITLE_HEADS)} {rng.choice(TITLE_TAILS)}"
        authors = " and ".join(
            rng.sample(author_pool, rng.randint(1, min(4, len(author_pool))))
        )
        year = rng.randint(years[0], years[1])
        lines = [f"@{entry_type}{{{key},"]
        lines.append(f"  title = {{{title}}},")
        lines.append(f"  author = {{{authors}}},")
        lines.append(f"  year = {year},")
        if is_article:
            lines.append(f"  journal = {{{rng.choice(JOURNALS)}}},")
        else:
            lines.append(
                f"  booktitle = {{Proceedings of {rng.choice(CONFERENCES)}}},"
            )
        if rng.random() < month_rate:
            lines.append(f"  month = {rng.choice(months)},")
        if rng.random() < abstract_rate:
            lines.append(
                f"  abstract = {{We study {title.lower()} and report "
                f"experimental results on workload {index}.}},"
            )
        if rng.random() < postscript_rate:
            lines.append(f"  postscript = {{papers/{key}.ps}},")
        if rng.random() < url_rate:
            lines.append(f"  url = {{http://example.org/papers/{key}}},")
        if rng.random() < category_rate:
            lines.append(f"  category = {{{rng.choice(CATEGORIES)}}},")
        lines.append("}")
        pieces.append("\n".join(lines))
    return "\n\n".join(pieces) + "\n"


def bibliography_graph(
    count: int, seed: int = 0, ordered_authors: bool = False, **rates
) -> Graph:
    """Generate entries and wrap them into a data graph in one step."""
    text = generate_entries(count, seed=seed, **rates)
    return BibtexWrapper(text, ordered_authors=ordered_authors).wrap()


#: The paper's Fig. 3 site-definition query for a homepage over a
#: Publications collection (categories clause included), reconstructed.
HOMEPAGE_QUERY = """
// Fig. 3: site definition for the example homepage site
create RootPage(), AbstractsPage()
link RootPage() -> "Abstract" -> AbstractsPage()
where Publications(x), x -> l -> v
create AbstractPage(x), PaperPresentation(x)
link PaperPresentation(x) -> l -> v,
     PaperPresentation(x) -> "abstractPage" -> AbstractPage(x),
     AbstractPage(x) -> l -> v,
     AbstractsPage() -> "Abstract" -> AbstractPage(x)
collect Presentations(PaperPresentation(x)), AbstractPages(AbstractPage(x))
{
  where x -> "year" -> y
  create YearPage(y)
  link YearPage(y) -> "Paper" -> PaperPresentation(x),
       YearPage(y) -> "Year" -> y,
       RootPage() -> "YearPage" -> YearPage(y)
  collect YearPages(YearPage(y))
}
{
  where x -> "category" -> c
  create CategoryPage(c)
  link CategoryPage(c) -> "Paper" -> PaperPresentation(x),
       CategoryPage(c) -> "Category" -> c,
       RootPage() -> "CategoryPage" -> CategoryPage(c)
  collect CategoryPages(CategoryPage(c))
}
"""


def homepage_templates():
    """The example homepage's template set (paper Fig. 6, reconstructed)."""
    from ..template import TemplateSet

    templates = TemplateSet()
    templates.add(
        "rootpage",
        """<html><head><title>Home Page</title></head><body>
<h1>Research Home Page</h1>
<p>Papers by year:</p>
<SFMT YearPage UL ORDER=descend KEY=Year>
<p>Papers by category:</p>
<SFMT CategoryPage UL ORDER=ascend KEY=Category>
<p><SFMT Abstract></p>
</body></html>
""",
    )
    templates.add(
        "abstractspage",
        """<html><head><title>All Abstracts</title></head><body>
<h1>Abstracts</h1>
<SFMT Abstract EMBED UL>
</body></html>
""",
    )
    templates.add(
        "yearpage",
        """<html><head><title>Papers from <SFMT Year></title></head><body>
<h2>Papers from <SFMT Year></h2>
<SFOR p IN Paper DELIM="<hr>"><SFMT @p EMBED></SFOR>
</body></html>
""",
    )
    templates.add(
        "categorypage",
        """<html><head><title><SFMT Category> papers</title></head><body>
<h2>Category: <SFMT Category></h2>
<SFOR p IN Paper DELIM="<hr>"><SFMT @p EMBED></SFOR>
</body></html>
""",
    )
    templates.add(
        "paperpresentation",
        """<b><SFMT title></b>
(<SFMT year><SIF month>, <SFMT month></SIF>)
by <SFMT author ENUM DELIM=", ">
<SIF journal><i><SFMT journal></i></SIF>
<SIF booktitle><i><SFMT booktitle></i></SIF>
<SIF postscript><SFMT postscript></SIF>
<SIF abstractPage>[<SFMT abstractPage>]</SIF>
""",
    )
    templates.add(
        "abstractpage",
        """<html><head><title><SFMT title></title></head><body>
<h3><SFMT title></h3>
<SIF abstract><p><SFMT abstract></p><SELSE><p><i>No abstract available.</i></p></SIF>
<p>by <SFMT author ENUM DELIM=", "></p>
</body></html>
""",
    )
    templates.for_object("RootPage()", "rootpage")
    templates.for_object("AbstractsPage()", "abstractspage")
    templates.for_collection("YearPages", "yearpage")
    templates.for_collection("CategoryPages", "categorypage")
    templates.for_collection("Presentations", "paperpresentation")
    templates.for_collection("AbstractPages", "abstractpage")
    return templates
