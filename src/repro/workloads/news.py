"""Synthetic news-site workload (the CNN demonstration shape).

"Our first example was a demonstration version of the CNN Web site ...
we mapped their HTML pages into a data graph containing about 300
articles.  Our version of the CNN site is defined by a 44-line query and
nine templates" (paper section 5.1).  "On any day, one article may
appear in various formats on multiple pages"; the sports-only derived
site "only differs in two extra predicates in one where clause".

This generator produces ~N articles as *HTML pages* which the HTML
wrapper re-parses -- the same "we did not have access to their database,
so we wrapped their pages" path the authors took -- plus a direct graph
constructor for benchmarks that do not care about the wrapping step.

Article shape: headline, date, 1-2 categories (one primary), body
paragraphs, optional image, optional related-article links, "top story"
flag on a few per category.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..graph import Graph, image_file, integer, string, text_file
from ..wrappers import HtmlSiteWrapper

CATEGORIES = ["world", "us", "sports", "technology", "weather", "showbiz"]

_HEADLINE_HEADS = [
    "Officials announce", "Markets react to", "Scientists discover",
    "Team wins despite", "Storm approaches", "Voters weigh",
    "Researchers question", "Industry adopts", "City debates", "Fans celebrate",
]
_HEADLINE_TAILS = [
    "new policy", "record results", "unexpected findings", "late-season rally",
    "coastal regions", "budget proposal", "early benchmarks", "open standards",
    "transit plans", "historic victory",
]


def article_pages(count: int = 300, seed: int = 0) -> Dict[str, str]:
    """Generate article HTML pages keyed by path (plus category index
    pages, as a real crawl would include)."""
    rng = random.Random(seed)
    pages: Dict[str, str] = {}
    by_category: Dict[str, List[str]] = {c: [] for c in CATEGORIES}
    metadata: List[Dict[str, object]] = []
    for index in range(count):
        primary = rng.choice(CATEGORIES)
        categories = [primary]
        if rng.random() < 0.25:
            secondary = rng.choice([c for c in CATEGORIES if c != primary])
            categories.append(secondary)
        headline = f"{rng.choice(_HEADLINE_HEADS)} {rng.choice(_HEADLINE_TAILS)}"
        path = f"{primary}/article{index}.html"
        by_category[primary].append(path)
        metadata.append(
            {
                "path": path,
                "headline": headline,
                "categories": categories,
                "date": f"1998-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
                "image": rng.random() < 0.4,
                "top": rng.random() < 0.1,
                "index": index,
            }
        )
    for article in metadata:
        rng_local = random.Random(seed + int(article["index"]))  # type: ignore[arg-type]
        related = rng_local.sample(
            [a["path"] for a in metadata if a is not article],
            min(3, count - 1),
        )
        related_html = "".join(
            f'<p><a href="../{other}">related story</a></p>' for other in related
        )
        image_html = (
            f'<img src="images/art{article["index"]}.jpg">' if article["image"] else ""
        )
        meta_tags = "".join(
            f'<meta name="category" content="{c}">' for c in article["categories"]
        )
        meta_tags += f'<meta name="date" content="{article["date"]}">'
        if article["top"]:
            meta_tags += '<meta name="top" content="true">'
        body = " ".join(
            f"Paragraph {p} of the report on {article['headline'].lower()}."
            for p in range(1, rng_local.randint(2, 5))
        )
        pages[str(article["path"])] = (
            f"<html><head><title>{article['headline']}</title>{meta_tags}</head>"
            f"<body><h1>{article['headline']}</h1>{image_html}"
            f"<p>{body}</p>{related_html}</body></html>"
        )
    for category, paths in by_category.items():
        links = "".join(
            f'<p><a href="../{p}">story</a></p>' for p in paths[:20]
        )
        pages[f"{category}/index.html"] = (
            f"<html><head><title>{category.capitalize()} news</title></head>"
            f"<body><h1>{category.capitalize()}</h1>{links}</body></html>"
        )
    return pages


def news_graph_from_pages(count: int = 300, seed: int = 0) -> Graph:
    """The authors' path: generate pages, wrap them with the HTML wrapper,
    then shape the wrapped pages into an Articles collection."""
    pages = article_pages(count, seed)
    graph = HtmlSiteWrapper(pages, collection="Pages").wrap()
    graph.create_collection("Articles")
    for oid in graph.collection("Pages"):
        path = graph.attribute(oid, "path")
        if path is not None and "/article" in str(path):
            graph.add_to_collection("Articles", oid)
    return graph


def news_graph(count: int = 300, seed: int = 0) -> Graph:
    """Direct graph construction (no HTML round trip) for benchmarks."""
    rng = random.Random(seed)
    graph = Graph("news")
    graph.create_collection("Articles")
    oids = []
    for index in range(count):
        primary = rng.choice(CATEGORIES)
        oid = graph.add_node(hint="art")
        graph.add_edge(oid, "headline", string(
            f"{rng.choice(_HEADLINE_HEADS)} {rng.choice(_HEADLINE_TAILS)}"
        ))
        graph.add_edge(oid, "date", string(
            f"1998-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"
        ))
        graph.add_edge(oid, "category", string(primary))
        if rng.random() < 0.25:
            graph.add_edge(
                oid, "category",
                string(rng.choice([c for c in CATEGORIES if c != primary])),
            )
        graph.add_edge(oid, "text", text_file(f"Body of article {index}."))
        if rng.random() < 0.4:
            graph.add_edge(oid, "image", image_file(f"images/art{index}.jpg"))
        if rng.random() < 0.1:
            graph.add_edge(oid, "top", string("true"))
        graph.add_edge(oid, "serial", integer(index))
        graph.add_to_collection("Articles", oid)
        oids.append(oid)
    for oid in oids:
        for other in rng.sample(oids, min(3, len(oids))):
            if other is not oid:
                graph.add_edge(oid, "related", other)
    return graph


#: The general news-site definition (shape of the paper's 44-line query).
#: One query with nested blocks, so the article selection happens in a
#: single where clause.
NEWS_SITE_QUERY = """
// CNN-demo style site: front page, category pages, article pages
create FrontPage()
where Articles(a), a -> "category" -> c
create CategoryPage(c), ArticlePage(a)
link FrontPage() -> "Category" -> CategoryPage(c),
     CategoryPage(c) -> "Name" -> c,
     CategoryPage(c) -> "Story" -> ArticlePage(a)
collect CategoryPages(CategoryPage(c)), ArticlePages(ArticlePage(a))
{
  where a -> l -> v
  link ArticlePage(a) -> l -> v
}
{
  where a -> "related" -> r, Articles(r)
  link ArticlePage(a) -> "Related" -> ArticlePage(r)
}
{
  where a -> "top" -> t
  link FrontPage() -> "TopStory" -> ArticlePage(a)
}
"""

#: The sports-only derivation: the same query with **two extra
#: predicates in one where clause** (exactly the delta the paper
#: reports for the CNN sports-only site).
SPORTS_SITE_QUERY = NEWS_SITE_QUERY.replace(
    'where Articles(a), a -> "category" -> c\n',
    'where Articles(a), a -> "category" -> c, a -> "category" -> s, s = "sports"\n',
).replace(
    "// CNN-demo style site: front page, category pages, article pages",
    "// Sports-only version: two extra predicates in the first where clause",
)


def news_templates():
    """Nine templates, as the paper reports for the CNN demo."""
    from ..template import TemplateSet

    templates = TemplateSet()
    templates.add("front", """<html><head><title>News</title></head><body>
<h1>Today's News</h1>
<h2>Top stories</h2>
<SFMT TopStory UL>
<h2>Sections</h2>
<SFMT Category UL ORDER=ascend KEY=Name>
</body></html>
""")
    templates.add("category", """<html><head><title><SFMT Name></title></head><body>
<h1>Section: <SFMT Name></h1>
<SFMT Story UL>
</body></html>
""")
    templates.add("article", """<html><head><title><SFMT headline></title></head><body>
<h1><SFMT headline></h1>
<p class="date"><SFMT date></p>
<SIF image><SFMT image></SIF>
<div class="body"><SFMT text></div>
<SIF Related><h3>Related</h3><SFMT Related UL></SIF>
</body></html>
""")
    templates.add("headline-only", """<b><SFMT headline></b> (<SFMT date>)""")
    templates.add("summary", """<p><b><SFMT headline></b> &mdash; <SFMT text></p>""")
    templates.add("banner", """<div class="banner"><SFMT headline></div>""")
    templates.add("datebox", """<span class="date"><SFMT date></span>""")
    templates.add("imagebox", """<SIF image><div class="img"><SFMT image></div></SIF>""")
    templates.add("related-list", """<SIF Related><SFMT Related UL></SIF>""")
    templates.for_object("FrontPage()", "front")
    templates.for_collection("CategoryPages", "category")
    templates.for_collection("ArticlePages", "article")
    return templates
