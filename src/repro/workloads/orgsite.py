"""Synthetic organization-site workload (the AT&T Labs-Research shape).

The paper's largest example (section 5.1): "home pages of approximately
400 users and pages for organizations and projects ... The data sources
for this site are small relational databases that contain personnel and
organizational data, structured files that contain project data, and
existing HTML files" -- five sources in total (section 6.1), "defined by
a 115-line query and 17 HTML templates (380 lines)".

We cannot ship AT&T's data, so this module synthesizes the five sources
at a configurable scale (default 400 people) and exercises exactly the
code paths the authors used: CSV tables through the relational wrapper,
record-jar files through the structured wrapper, legacy pages through the
HTML wrapper, plus a publications BibTeX and a DDL file of lab-wide
facts.  ``build_mediator`` wires them into a GAV mediator whose mappings
produce the mediated People / Departments / Projects / Publications
collections.

Irregularities built in (section 6.3): some projects omit ``synopsis``,
unsponsored projects have no ``sponsor``, some people lack phones or
photos, lab vs. department directors share most-but-not-all attributes.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..mediator import Mediator
from ..wrappers import (
    BibtexWrapper,
    DdlWrapper,
    ForeignKey,
    HtmlSiteWrapper,
    RelationalWrapper,
    StructuredFileWrapper,
    Table,
)
from .bibliography import FIRST_NAMES, LAST_NAMES, generate_entries

AREAS = ["databases", "networking", "speech", "theory", "systems", "hci"]
SPONSORS = ["DARPA", "NSF", "internal", "NIST"]


def _person_pool(count: int, rng: random.Random) -> List[Tuple[str, str]]:
    """(login, full name) pairs, unique logins."""
    people: List[Tuple[str, str]] = []
    seen: Dict[str, int] = {}
    while len(people) < count:
        first = rng.choice(FIRST_NAMES)
        last = rng.choice(LAST_NAMES)
        base = (first[0] + last).lower().replace("-", "")
        serial = seen.get(base, 0)
        seen[base] = serial + 1
        login = base if serial == 0 else f"{base}{serial}"
        people.append((login, f"{first} {last}"))
    return people


def personnel_table(count: int, seed: int = 0) -> Table:
    """The personnel relational table (source 1)."""
    rng = random.Random(seed)
    people = _person_pool(count, rng)
    departments = max(2, count // 40)
    rows = []
    for index, (login, name) in enumerate(people):
        dept = f"d{index % departments}"
        phone = f"+1 973 360 {1000 + index:04d}" if rng.random() < 0.85 else ""
        office = f"B{rng.randint(100, 299)}" if rng.random() < 0.9 else ""
        photo = f"photos/{login}.gif" if rng.random() < 0.4 else ""
        internal_notes = (
            f"performance review {rng.randint(1995, 1998)}"
            if rng.random() < 0.5
            else ""
        )
        rows.append(
            [login, name, f"{login}@research.example.com", phone, office,
             dept, photo, internal_notes]
        )
    return Table(
        "people",
        ["login", "name", "email", "phone", "office", "dept", "photo", "internal_notes"],
        rows,
    )


def departments_table(people: Table, seed: int = 0) -> Table:
    """The organizational relational table (source 2)."""
    rng = random.Random(seed + 1)
    departments = sorted({row[5] for row in people.rows})
    rows = []
    for dept in departments:
        members = [row[0] for row in people.rows if row[5] == dept]
        director = rng.choice(members)
        area = rng.choice(AREAS)
        rows.append([dept, f"{area.capitalize()} Research", director, area])
    return Table("departments", ["id", "name", "director", "area"], rows)


def projects_text(people: Table, count: int = 0, seed: int = 0) -> str:
    """The project structured file (source 3), with section 6.3's
    irregularities: missing synopsis, missing sponsor."""
    rng = random.Random(seed + 2)
    logins = [row[0] for row in people.rows]
    if count <= 0:
        count = max(3, len(logins) // 12)
    lines = ["%collection Projects", "%id name"]
    for index in range(count):
        area = rng.choice(AREAS)
        lines.append("")
        lines.append(f"name: project-{area}-{index}")
        lines.append(f"title: The {area.capitalize()} Project {index}")
        lines.append(f"area: {area}")
        for member in rng.sample(logins, min(len(logins), rng.randint(2, 6))):
            lines.append(f"member: {member}")
        if rng.random() < 0.7:  # "some projects omitted the synopsis"
            lines.append(
                f"synopsis: Research on {area} at scale, phase {index % 3 + 1}."
            )
        if rng.random() < 0.5:  # "not all projects are sponsored"
            lines.append(f"sponsor: {rng.choice(SPONSORS)}")
    return "\n".join(lines) + "\n"


def legacy_pages(people: Table, seed: int = 0, fraction: float = 0.15) -> Dict[str, str]:
    """Hand-written legacy member pages (source 4), HTML-wrapped."""
    rng = random.Random(seed + 3)
    sampled = [row for row in people.rows if rng.random() < fraction]
    pages: Dict[str, str] = {}
    for row in sampled:
        login, name = row[0], row[1]
        others = [r[0] for r in sampled if r[0] != login]
        links = "".join(
            f'<p><a href="{other}.html">colleague {other}</a></p>'
            for other in rng.sample(others, min(2, len(others)))
        )
        pages[f"{login}.html"] = (
            f"<html><head><title>{name}'s old page</title></head><body>"
            f"<h1>{name}</h1><p>Legacy homepage of {name}, kept for "
            f"posterity.</p>{links}</body></html>"
        )
    return pages


def lab_facts_ddl(seed: int = 0) -> str:
    """Lab-wide facts in Strudel DDL (source 5)."""
    return """
collection LabFacts

object lab {
  name: "Example Labs Research"
  address: "180 Park Avenue, Florham Park, NJ"
  director: "The Lab Director"
  mission: "Data management research for the novel problems of the Web."
}
member LabFacts: lab
"""


#: GAV mappings: mediated collections from the five staged sources.
GAV_MAPPINGS = """
where "personnel.people"(p), p -> l -> v
create Person(p)
link Person(p) -> l -> v
collect People(Person(p))
where "orgdb.departments"(d), d -> l -> v
create Department(d)
link Department(d) -> l -> v
collect Departments(Department(d))
where "orgdb.departments"(d), d -> "id" -> i,
      "personnel.people"(p), p -> "dept" -> i
link Department(d) -> "memberPerson" -> Person(p),
     Person(p) -> "department" -> Department(d)
where "orgdb.departments"(d), d -> "director" -> g,
      "personnel.people"(p), p -> "login" -> g
link Department(d) -> "directorPerson" -> Person(p)
where "projects.Projects"(j), j -> l -> v
create Project(j)
link Project(j) -> l -> v
collect Projects(Project(j))
where "projects.Projects"(j), j -> "member" -> g,
      "personnel.people"(p), p -> "login" -> g
link Project(j) -> "memberPerson" -> Person(p),
     Person(p) -> "project" -> Project(j)
where "pubs.Publications"(b), b -> l -> v
create Publication(b)
link Publication(b) -> l -> v
collect Publications(Publication(b))
where "pubs.Publications"(b), b -> "author" -> a,
      "personnel.people"(p), p -> "name" -> a
link Publication(b) -> "authorPerson" -> Person(p),
     Person(p) -> "publication" -> Publication(b)
where "legacy.Pages"(w), w -> "path" -> v
create LegacyPage(w)
link LegacyPage(w) -> "path" -> v
collect LegacyPages(LegacyPage(w))
where "legacy.Pages"(w), w -> "title" -> t
link LegacyPage(w) -> "title" -> t
"""


def build_mediator(
    people: int = 400,
    seed: int = 0,
    publications: int = 0,
) -> Mediator:
    """Assemble the five-source mediator at the requested scale."""
    table = personnel_table(people, seed)
    departments = departments_table(table, seed)
    if publications <= 0:
        publications = max(10, people // 4)
    author_pool = [row[1] for row in table.rows]
    bibtex = generate_entries(publications, seed=seed + 4, author_pool=author_pool)
    mediator = Mediator()
    mediator.add_source(
        "personnel",
        RelationalWrapper([table], key_columns={"people": "login"}),
    )
    mediator.add_source(
        "orgdb",
        RelationalWrapper([departments], key_columns={"departments": "id"}),
    )
    mediator.add_source(
        "projects", StructuredFileWrapper(projects_text(table, seed=seed))
    )
    mediator.add_source("pubs", BibtexWrapper(bibtex))
    mediator.add_source("legacy", HtmlSiteWrapper(legacy_pages(table, seed=seed)))
    mediator.add_mapping(GAV_MAPPINGS)
    return mediator
