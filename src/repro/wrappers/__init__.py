"""Source wrappers: translate external representations into graphs."""

from .base import Wrapper
from .bibtex import PUBLICATIONS, BibtexWrapper, parse_bibtex
from .ddlfiles import DdlWrapper
from .htmlpages import HtmlSiteWrapper
from .relational import ForeignKey, RelationalWrapper, Table, infer_atom
from .structured import StructuredFileWrapper
from .xmlfiles import XmlWrapper

__all__ = [
    "BibtexWrapper",
    "DdlWrapper",
    "ForeignKey",
    "HtmlSiteWrapper",
    "PUBLICATIONS",
    "RelationalWrapper",
    "StructuredFileWrapper",
    "Table",
    "Wrapper",
    "XmlWrapper",
    "infer_atom",
    "parse_bibtex",
]
