"""Common wrapper interface.

"A set of source-specific wrappers translates the external representation
into the graph model" (paper section 2.1).  Every wrapper consumes one
external source (text, file, or rows) and produces a
:class:`~repro.graph.Graph`; the mediator then integrates several wrapper
outputs into the data graph.

The paper's wrappers were "simple AWK programs"; ours are small Python
classes sharing this interface so the mediator can treat them uniformly.
"""

from __future__ import annotations

from typing import Optional

from ..graph import Graph


class Wrapper:
    """Base class: a named translator from one source into a graph."""

    #: short identifier of the source kind ("bibtex", "relational", ...)
    source_kind = "abstract"

    def __init__(self, source_name: str = "") -> None:
        self.source_name = source_name or self.source_kind

    def wrap(self) -> Graph:
        """Translate the source into a fresh graph.

        Subclasses implement :meth:`_wrap_into`; this wrapper method only
        names the result.
        """
        graph = Graph(self.source_name)
        self._wrap_into(graph)
        return graph

    def _wrap_into(self, graph: Graph) -> None:  # pragma: no cover - interface
        raise NotImplementedError
