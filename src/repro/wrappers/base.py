"""Common wrapper interface.

"A set of source-specific wrappers translates the external representation
into the graph model" (paper section 2.1).  Every wrapper consumes one
external source (text, file, or rows) and produces a
:class:`~repro.graph.Graph`; the mediator then integrates several wrapper
outputs into the data graph.

The paper's wrappers were "simple AWK programs"; ours are small Python
classes sharing this interface so the mediator can treat them uniformly.

Wrapping has two modes.  The default is strict: the first malformed
record raises a :class:`~repro.errors.WrapperError` carrying the source
name and a record locator.  Passing ``wrap(policy=WrapPolicy.tolerant())``
instead quarantines per-record failures into ``last_quarantine`` -- a
:class:`~repro.resilience.QuarantineReport` -- and ingests everything
well-formed, up to the policy's error budget.  Real feeds are messy
(the paper's AT&T and CNN sites re-ingested live data continuously);
one bad entry must not take down the site.
"""

from __future__ import annotations

from typing import Optional

from ..errors import QuarantineExceeded, StrudelError, WrapperError
from ..graph import Graph
from ..resilience.chaos import maybe_fail
from ..resilience.quarantine import QuarantineReport, WrapPolicy


class Wrapper:
    """Base class: a named translator from one source into a graph."""

    #: short identifier of the source kind ("bibtex", "relational", ...)
    source_kind = "abstract"

    def __init__(self, source_name: str = "") -> None:
        self.source_name = source_name or self.source_kind
        #: per-record failures of the most recent tolerant wrap
        self.last_quarantine = QuarantineReport(source=self.source_name)

    def wrap(self, policy: Optional[WrapPolicy] = None) -> Graph:
        """Translate the source into a fresh graph.

        Strict by default; with a quarantining ``policy``, malformed
        records are reported in ``last_quarantine`` instead of raising
        (until the policy's error budget is exhausted).  Subclasses
        implement :meth:`_wrap_into` (strict) and, for per-record
        granularity, :meth:`_wrap_tolerant`.
        """
        maybe_fail(f"wrapper.{self.source_kind}.wrap")
        graph = Graph(self.source_name)
        self.last_quarantine = QuarantineReport(source=self.source_name)
        if policy is None or not policy.quarantine:
            try:
                self._wrap_into(graph)
            except WrapperError as error:
                if error.source_name:
                    raise
                raise error.with_source(self.source_name) from error
        else:
            self._wrap_tolerant(graph, policy, self.last_quarantine)
        if policy is not None and policy.constraints is not None:
            # a record that parses but violates a declared data
            # constraint is a record fault like any other: quarantined
            # (tolerant) or raising (strict)
            from ..constraints.gate import apply_constraint_gate

            apply_constraint_gate(
                graph, policy, self.last_quarantine, self.source_name
            )
        return graph

    def _wrap_into(self, graph: Graph) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def _wrap_tolerant(
        self, graph: Graph, policy: WrapPolicy, report: QuarantineReport
    ) -> None:
        """Fallback tolerance: all-or-nothing at source granularity.

        Wrappers with per-record structure override this; for the rest a
        failing source quarantines as a single record and contributes an
        empty graph.
        """
        scratch = Graph(self.source_name)
        try:
            self._wrap_into(scratch)
        except (StrudelError, ValueError) as error:
            locator = getattr(error, "locator", "") or "source"
            self._quarantine(policy, report, locator, error)
            return
        graph.merge(scratch)
        report.admitted += 1

    def _quarantine(
        self,
        policy: WrapPolicy,
        report: QuarantineReport,
        locator: str,
        error: object,
        snippet: str = "",
    ) -> None:
        """Record one failed record; abort when the budget is blown."""
        report.add(locator, error, snippet=policy.clip(snippet), source=self.source_name)
        if policy.max_errors is not None and report.count > policy.max_errors:
            raise QuarantineExceeded(
                self.source_name, report.count, policy.max_errors, report
            )
