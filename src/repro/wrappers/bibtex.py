"""BibTeX wrapper: bibliography files -> data graph.

This is the wrapper behind the paper's running example (section 2.3):
"the wrapper converts BibTeX files into a STRUDEL data graph", producing
objects in a ``Publications`` collection whose attribute sets differ per
entry -- exactly the irregularity section 6.3 discusses (``month``
present on one entry and not another, ``journal`` vs. ``booktitle``).

Supported BibTeX subset:

* entries ``@type{key, field = value, ...}`` with ``{...}``, ``"..."``,
  bare-number and macro-reference values; nested braces are balanced;
* ``@string{name = "..."}`` macros, referenced by bare identifiers and
  concatenated with ``#``;
* ``@comment`` and ``@preamble`` entries are skipped;
* the ``author`` and ``editor`` fields are split on `` and `` into
  multiple edges, each carrying an ``authorOrder`` companion object when
  ``ordered_authors`` is set (the integer-key idiom of section 6.3).

Field typing: ``year``, ``volume`` and ``number`` become INTEGER atoms
when they look numeric; ``abstract`` becomes a TEXT_FILE atom;
``postscript``/``ps`` POSTSCRIPT_FILE; ``url`` URL; everything else
STRING.  The entry type is exposed as the ``type`` attribute and the
citation key as ``key``.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import StrudelError, WrapperError
from ..resilience.quarantine import QuarantineReport, WrapPolicy
from ..graph import (
    Atom,
    AtomType,
    Graph,
    Oid,
    integer,
    postscript_file,
    string,
    text_file,
    url,
)
from .base import Wrapper

#: Default collection for wrapped entries.
PUBLICATIONS = "Publications"

_ENTRY_START = re.compile(r"@\s*([A-Za-z]+)\s*[{(]")
_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_:\-./+]*")

_FIELD_TYPES = {
    "abstract": AtomType.TEXT_FILE,
    "postscript": AtomType.POSTSCRIPT_FILE,
    "ps": AtomType.POSTSCRIPT_FILE,
    "url": AtomType.URL,
}
_INTEGER_FIELDS = frozenset({"year", "volume", "number"})
_MULTI_FIELDS = frozenset({"author", "editor"})


class BibtexWrapper(Wrapper):
    """Wraps BibTeX text.

    Parameters
    ----------
    text:
        The BibTeX source.
    collection:
        Collection name for the entries (default ``Publications``).
    ordered_authors:
        When true, each author edge target becomes a small object with
        ``name`` and ``order`` attributes instead of a bare string --
        the paper's "associating an integer key with each author"
        solution for ordered lists in an unordered model.
    """

    source_kind = "bibtex"

    def __init__(
        self,
        text: str,
        collection: str = PUBLICATIONS,
        ordered_authors: bool = False,
        source_name: str = "",
    ) -> None:
        super().__init__(source_name)
        self.text = text
        self.collection = collection
        self.ordered_authors = ordered_authors

    @classmethod
    def from_file(cls, path: str, **kwargs) -> "BibtexWrapper":
        with open(path, "r", encoding="utf-8") as handle:
            return cls(handle.read(), source_name=path, **kwargs)

    # ------------------------------------------------------------ #

    def _wrap_into(self, graph: Graph) -> None:
        graph.create_collection(self.collection)
        macros: Dict[str, str] = {}
        for entry_type, key, fields in parse_bibtex(self.text, macros):
            self._add_entry(graph, entry_type, key, fields)

    def _wrap_tolerant(
        self, graph: Graph, policy: WrapPolicy, report: QuarantineReport
    ) -> None:
        """Per-entry quarantine: a malformed entry is reported and the
        parser resumes at the next ``@``; well-formed entries all load."""
        graph.create_collection(self.collection)
        macros: Dict[str, str] = {}

        def on_error(locator: str, error: WrapperError, snippet: str) -> None:
            self._quarantine(policy, report, locator, error, snippet)

        for entry_type, key, fields in iter_bibtex(self.text, macros, on_error):
            try:
                self._add_entry(graph, entry_type, key, fields)
                report.admitted += 1
            except (StrudelError, ValueError) as error:
                self._quarantine(policy, report, f"entry {key or '?'}", error)

    def _add_entry(
        self, graph: Graph, entry_type: str, key: str, fields: List[Tuple[str, str]]
    ) -> None:
        oid = graph.add_node(Oid(key) if key else None, hint="bib")
        graph.add_edge(oid, "type", string(entry_type))
        if key:
            graph.add_edge(oid, "key", string(key))
        for name, raw in fields:
            label = name.lower()
            if label in _MULTI_FIELDS:
                self._add_people(graph, oid, label, raw)
                continue
            graph.add_edge(oid, label, _typed_value(label, raw))
        graph.add_to_collection(self.collection, oid)

    def _add_people(self, graph: Graph, oid: Oid, label: str, raw: str) -> None:
        people = [p.strip() for p in re.split(r"\s+and\s+", raw) if p.strip()]
        for order, person in enumerate(people, start=1):
            if self.ordered_authors:
                person_oid = graph.add_node(hint=label)
                graph.add_edge(person_oid, "name", string(person))
                graph.add_edge(person_oid, "order", integer(order))
                graph.add_edge(oid, label, person_oid)
            else:
                graph.add_edge(oid, label, string(person))


def _typed_value(label: str, raw: str) -> Atom:
    cleaned = re.sub(r"\s+", " ", raw).strip()
    if label in _INTEGER_FIELDS and cleaned.isdigit():
        return integer(int(cleaned))
    flavour = _FIELD_TYPES.get(label)
    if flavour is AtomType.TEXT_FILE:
        return text_file(cleaned)
    if flavour is AtomType.POSTSCRIPT_FILE:
        return postscript_file(cleaned)
    if flavour is AtomType.URL:
        return url(cleaned)
    return string(cleaned)


# -------------------------------------------------------------------- #
# parser


def parse_bibtex(
    text: str, macros: Optional[Dict[str, str]] = None
) -> List[Tuple[str, str, List[Tuple[str, str]]]]:
    """Parse BibTeX text into ``(entry_type, key, [(field, value), ...])``.

    ``macros`` accumulates ``@string`` definitions; month abbreviations
    (``jan`` .. ``dec``) are predefined.  The first malformed entry
    raises a :class:`~repro.errors.WrapperError` whose locator names the
    entry and its line; :func:`iter_bibtex` with ``on_error`` is the
    tolerant variant.
    """
    return list(iter_bibtex(text, macros))


def _line_of(text: str, position: int) -> int:
    return text.count("\n", 0, position) + 1


def _guess_key(text: str, brace_index: int) -> str:
    """The citation key following the opening brace, best effort."""
    match = re.match(r"\s*([^,\s{}()\"]+)\s*,", text[brace_index + 1 :])
    return match.group(1) if match else ""


def iter_bibtex(
    text: str,
    macros: Optional[Dict[str, str]] = None,
    on_error: Optional[Callable[[str, WrapperError, str], None]] = None,
) -> Iterator[Tuple[str, str, List[Tuple[str, str]]]]:
    """Yield parsed entries one at a time.

    Without ``on_error`` the first malformed entry raises (with a
    locator).  With it, the failure is reported as
    ``on_error(locator, error, raw_snippet)`` and scanning resumes at
    the next ``@`` -- the recovery that makes per-record quarantine
    possible for a format with no record separators.
    """
    if macros is None:
        macros = {}
    for month in "jan feb mar apr may jun jul aug sep oct nov dec".split():
        macros.setdefault(month, month.capitalize())
    position = 0
    while True:
        match = _ENTRY_START.search(text, position)
        if match is None:
            break
        entry_type = match.group(1).lower()
        line = _line_of(text, match.start())
        try:
            body, position = _read_balanced(text, match.end() - 1)
            if entry_type in ("comment", "preamble"):
                continue
            if entry_type == "string":
                name, value = _parse_macro(body, macros)
                macros[name] = value
                continue
            key, fields = _parse_entry_body(body, macros)
        except WrapperError as error:
            key = _guess_key(text, match.end() - 1)
            named = f"entry {key} " if key else "entry "
            locator = f"{named}(line {line})"
            if on_error is None:
                raise WrapperError(
                    error.base_message, locator=locator, cause=error
                ) from error
            next_at = text.find("@", match.end())
            end = next_at if next_at >= 0 else len(text)
            on_error(locator, error, text[match.start() : end].strip())
            position = end
            continue
        yield entry_type, key, fields


def _read_balanced(text: str, open_index: int) -> Tuple[str, int]:
    """Read a ``{...}`` or ``(...)`` group starting at ``open_index``;
    returns (inner text, index just past the closer)."""
    opener = text[open_index]
    closer = "}" if opener == "{" else ")"
    depth = 0
    index = open_index
    while index < len(text):
        char = text[index]
        if char == opener or (opener == "{" and char == "{"):
            depth += 1
        elif char == closer or (opener == "{" and char == "}"):
            depth -= 1
            if depth == 0:
                return text[open_index + 1 : index], index + 1
        index += 1
    raise WrapperError("unbalanced braces in BibTeX entry")


def _parse_macro(body: str, macros: Dict[str, str]) -> Tuple[str, str]:
    match = re.match(r"\s*([A-Za-z_][A-Za-z0-9_\-]*)\s*=\s*", body)
    if match is None:
        raise WrapperError(f"bad @string body: {body[:40]!r}")
    value, _ = _parse_value(body, match.end(), macros)
    return match.group(1).lower(), value


def _parse_entry_body(
    body: str, macros: Dict[str, str]
) -> Tuple[str, List[Tuple[str, str]]]:
    comma = body.find(",")
    if comma < 0:
        return body.strip(), []
    key = body[:comma].strip()
    fields: List[Tuple[str, str]] = []
    position = comma + 1
    while position < len(body):
        match = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_\-]*)\s*=\s*").match(body, position)
        if match is None:
            remaining = body[position:].strip()
            if remaining and remaining != ",":
                raise WrapperError(f"bad BibTeX field near {remaining[:40]!r}")
            break
        name = match.group(1).lower()
        value, position = _parse_value(body, match.end(), macros)
        fields.append((name, value))
        comma_match = re.compile(r"\s*,").match(body, position)
        if comma_match is None:
            break
        position = comma_match.end()
    return key, fields


def _parse_value(body: str, position: int, macros: Dict[str, str]) -> Tuple[str, int]:
    """Parse a field value: concatenation of pieces joined by ``#``."""
    pieces: List[str] = []
    while True:
        while position < len(body) and body[position].isspace():
            position += 1
        if position >= len(body):
            break
        char = body[position]
        if char == "{":
            piece, position = _read_balanced(body, position)
            pieces.append(_strip_braces(piece))
        elif char == '"':
            end = position + 1
            depth = 0
            while end < len(body):
                if body[end] == "{":
                    depth += 1
                elif body[end] == "}":
                    depth -= 1
                elif body[end] == '"' and depth == 0:
                    break
                end += 1
            if end >= len(body):
                raise WrapperError("unterminated quoted BibTeX value")
            pieces.append(_strip_braces(body[position + 1 : end]))
            position = end + 1
        elif char.isdigit():
            match = re.compile(r"\d+").match(body, position)
            assert match is not None
            pieces.append(match.group(0))
            position = match.end()
        else:
            match = _IDENT.match(body, position)
            if match is None:
                raise WrapperError(f"bad BibTeX value near {body[position:][:40]!r}")
            name = match.group(0).lower()
            pieces.append(macros.get(name, name))
            position = match.end()
        hash_match = re.compile(r"\s*#").match(body, position)
        if hash_match is None:
            break
        position = hash_match.end()
    return "".join(pieces), position


def _strip_braces(text: str) -> str:
    """Remove protective braces BibTeX uses for capitalization."""
    return text.replace("{", "").replace("}", "")
