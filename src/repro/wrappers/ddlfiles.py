"""DDL wrapper: Strudel data-definition-language files -> data graph.

"Other information is stored in files in STRUDEL's data definition
language" (paper section 5.1) -- personal data like addresses, projects
and professional activities in the mff homepage example.  The wrapper is
a thin adapter over :mod:`repro.repository.ddl` so that DDL files plug
into the same mediation pipeline as every other source.
"""

from __future__ import annotations

from ..errors import DDLSyntaxError, WrapperError
from ..graph import Graph
from ..repository import ddl
from .base import Wrapper


class DdlWrapper(Wrapper):
    """Wraps DDL text."""

    source_kind = "ddl"

    def __init__(self, text: str, source_name: str = "") -> None:
        super().__init__(source_name)
        self.text = text

    @classmethod
    def from_file(cls, path: str) -> "DdlWrapper":
        with open(path, "r", encoding="utf-8") as handle:
            return cls(handle.read(), source_name=path)

    def _wrap_into(self, graph: Graph) -> None:
        try:
            graph.merge(ddl.loads(self.text, self.source_name))
        except DDLSyntaxError as error:
            line = getattr(error, "line", 0)
            raise WrapperError(
                str(error),
                locator=f"line {line}" if line else "",
                cause=error,
            ) from error
