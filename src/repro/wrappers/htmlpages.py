"""HTML wrapper: existing web pages -> data graph.

The CNN demonstration site was built by mapping CNN's HTML pages into a
data graph of ~300 articles ("because we did not have access to CNN's
databases of articles, we mapped their HTML pages into a data graph",
paper section 5.1), and the AT&T site wrapped "existing HTML files".

One wrapped page becomes one object with attributes:

========== =====================================================
``path``    the page's path/URL (STRING)
``title``   contents of ``<title>``
``heading`` each ``<h1>``/``<h2>`` text (multi-valued)
``text``    concatenated paragraph text (TEXT_FILE atom)
``image``   each ``<img src>`` (IMAGE_FILE atoms)
``linksTo`` edge to another *wrapped* page object when an ``<a
            href>`` resolves to one; otherwise an ``href`` URL atom
``anchor``  the anchor text of each external href, paired by order
``meta-X``  each ``<meta name=X content=...>``
========== =====================================================

Pages are registered first and cross-wired second, so link direction and
file order do not matter.
"""

from __future__ import annotations

import posixpath
from html.parser import HTMLParser
from typing import Dict, List, Optional, Tuple

from ..errors import StrudelError, WrapperError
from ..graph import Graph, Oid, image_file, string, text_file, url
from ..resilience.quarantine import QuarantineReport, WrapPolicy
from .base import Wrapper


class _PageScan(HTMLParser):
    """Collects title, headings, paragraph text, images, links, metas."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.title = ""
        self.headings: List[str] = []
        self.paragraphs: List[str] = []
        self.images: List[str] = []
        self.links: List[Tuple[str, str]] = []  # (href, anchor text)
        self.metas: List[Tuple[str, str]] = []
        self._stack: List[str] = []
        self._buffer: List[str] = []
        self._anchor_href: Optional[str] = None
        self._anchor_text: List[str] = []

    def handle_starttag(self, tag: str, attrs) -> None:
        attributes = dict(attrs)
        if tag in ("title", "h1", "h2", "p"):
            self._stack.append(tag)
            self._buffer = []
        elif tag == "img":
            source = attributes.get("src")
            if source:
                self.images.append(source)
        elif tag == "a":
            href = attributes.get("href")
            if href:
                self._anchor_href = href
                self._anchor_text = []
        elif tag == "meta":
            name = attributes.get("name")
            content = attributes.get("content")
            if name and content:
                self.metas.append((name, content))

    def handle_endtag(self, tag: str) -> None:
        if self._stack and self._stack[-1] == tag:
            self._stack.pop()
            text = " ".join("".join(self._buffer).split())
            if tag == "title":
                self.title = text
            elif tag in ("h1", "h2") and text:
                self.headings.append(text)
            elif tag == "p" and text:
                self.paragraphs.append(text)
            self._buffer = []
        if tag == "a" and self._anchor_href is not None:
            anchor = " ".join("".join(self._anchor_text).split())
            self.links.append((self._anchor_href, anchor))
            self._anchor_href = None
            self._anchor_text = []

    def handle_data(self, data: str) -> None:
        if self._stack:
            self._buffer.append(data)
        if self._anchor_href is not None:
            self._anchor_text.append(data)


class HtmlSiteWrapper(Wrapper):
    """Wraps a set of HTML pages, cross-linking internal references.

    ``pages`` maps path -> HTML text.  Relative hrefs are resolved
    against the linking page's directory; hrefs that resolve to another
    wrapped page become ``linksTo`` edges, the rest become ``href`` URL
    atoms.
    """

    source_kind = "html"

    def __init__(
        self,
        pages: Dict[str, str],
        collection: str = "Pages",
        source_name: str = "",
    ) -> None:
        super().__init__(source_name)
        self.pages = dict(pages)
        self.collection = collection

    # ------------------------------------------------------------ #

    def _wrap_into(self, graph: Graph) -> None:
        graph.create_collection(self.collection)
        scans: Dict[str, _PageScan] = {}
        oids: Dict[str, Oid] = {}
        for path, text in self.pages.items():
            try:
                scans[path], oids[path] = self._wrap_page(graph, path, text)
            except (StrudelError, ValueError) as error:
                message = getattr(error, "base_message", "") or str(error)
                raise WrapperError(
                    message, locator=f"page {path}", cause=error
                ) from error
        self._wire_links(graph, scans, oids)

    def _wrap_tolerant(
        self, graph: Graph, policy: WrapPolicy, report: QuarantineReport
    ) -> None:
        """Per-page quarantine: a page that will not scan is dropped;
        links that pointed at it degrade into plain ``href`` atoms."""
        graph.create_collection(self.collection)
        scans: Dict[str, _PageScan] = {}
        oids: Dict[str, Oid] = {}
        for path, text in self.pages.items():
            try:
                scans[path], oids[path] = self._wrap_page(graph, path, text)
                report.admitted += 1
            except (StrudelError, ValueError) as error:
                scans.pop(path, None)
                oids.pop(path, None)
                oid = Oid(f"page:{path}")
                if graph.has_node(oid):
                    graph.remove_node(oid)
                self._quarantine(
                    policy, report, f"page {path}", error, snippet=text
                )
        self._wire_links(graph, scans, oids)

    def _wrap_page(self, graph: Graph, path: str, text: str) -> Tuple[_PageScan, Oid]:
        scan = _PageScan()
        scan.feed(text)
        scan.close()
        oid = graph.add_node(Oid(f"page:{path}"))
        graph.add_edge(oid, "path", string(path))
        if scan.title:
            graph.add_edge(oid, "title", string(scan.title))
        for heading in scan.headings:
            graph.add_edge(oid, "heading", string(heading))
        if scan.paragraphs:
            graph.add_edge(oid, "text", text_file(" ".join(scan.paragraphs)))
        for image in scan.images:
            graph.add_edge(oid, "image", image_file(image))
        for name, content in scan.metas:
            graph.add_edge(oid, f"meta-{name}", string(content))
        graph.add_to_collection(self.collection, oid)
        return scan, oid

    def _wire_links(
        self, graph: Graph, scans: Dict[str, _PageScan], oids: Dict[str, Oid]
    ) -> None:
        for path, scan in scans.items():
            source = oids[path]
            base = posixpath.dirname(path)
            for href, anchor in scan.links:
                resolved = _resolve(base, href)
                target = oids.get(resolved)
                if target is not None:
                    graph.add_edge(source, "linksTo", target)
                else:
                    graph.add_edge(source, "href", url(href))
                if anchor:
                    graph.add_edge(source, "anchor", string(anchor))


def _resolve(base: str, href: str) -> str:
    """Resolve ``href`` relative to directory ``base`` (posix semantics)."""
    if "://" in href or href.startswith("#"):
        return href
    href = href.split("#", 1)[0].split("?", 1)[0]
    if href.startswith("/"):
        return posixpath.normpath(href.lstrip("/"))
    return posixpath.normpath(posixpath.join(base, href))
