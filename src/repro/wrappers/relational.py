"""Relational wrapper: tables (CSV) -> data graph.

The AT&T site's data sources included "small relational databases that
contain personnel and organizational data" (paper section 5.1).  This
wrapper turns one table into one collection: each row becomes an object,
each column an attribute.  Empty cells produce *no* edge -- this is where
relational NULLs turn into semistructured missing attributes.

Column typing is inferred per cell (integer, float, boolean, else
string) unless ``column_types`` pins a column to a DDL type name.
Foreign keys can be declared so that wrapped tables reference each
other's rows as graph edges instead of duplicated values.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import StrudelError, WrapperError
from ..graph import Atom, AtomType, Graph, Oid, parse_typed_value
from ..resilience.quarantine import QuarantineReport, WrapPolicy
from .base import Wrapper


class Table:
    """An in-memory relational table: a header plus rows of strings.

    ``strict=False`` admits ragged rows (kept as-is); wrapping them then
    raises per row -- or quarantines them, under a tolerant policy.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[str]],
        strict: bool = True,
    ) -> None:
        self.name = name
        self.columns = list(columns)
        self.rows = [list(row) for row in rows]
        if strict:
            for number, row in enumerate(self.rows, start=1):
                if len(row) != len(self.columns):
                    raise WrapperError(
                        f"row width {len(row)} != header width {len(self.columns)} "
                        f"in table {name!r}",
                        locator=f"row {number}",
                    )

    @classmethod
    def from_csv(cls, name: str, text: str, strict: bool = True) -> "Table":
        reader = csv.reader(io.StringIO(text))
        try:
            header = next(reader)
        except StopIteration:
            raise WrapperError(f"empty CSV for table {name!r}") from None
        return cls(name, header, list(reader), strict=strict)

    @classmethod
    def from_csv_file(cls, path: str, name: str = "") -> "Table":
        with open(path, "r", encoding="utf-8", newline="") as handle:
            text = handle.read()
        if not name:
            name = path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
        return cls.from_csv(name, text)


class ForeignKey:
    """Declares that ``column`` of this table references ``target_table``
    rows by their ``target_key`` column; wrapped as an edge named
    ``edge_label`` (default: the column name)."""

    def __init__(
        self, column: str, target_table: str, target_key: str, edge_label: str = ""
    ) -> None:
        self.column = column
        self.target_table = target_table
        self.target_key = target_key
        self.edge_label = edge_label or column


class RelationalWrapper(Wrapper):
    """Wraps a set of tables into one graph.

    ``key_columns`` maps table name -> column used to mint readable oids
    (``person:jsmith``); tables without one get anonymous oids.
    ``column_types`` maps ``table.column`` -> DDL type name
    (``"people.photo": "image"``).
    """

    source_kind = "relational"

    def __init__(
        self,
        tables: Sequence[Table],
        key_columns: Optional[Dict[str, str]] = None,
        column_types: Optional[Dict[str, str]] = None,
        foreign_keys: Optional[Dict[str, List[ForeignKey]]] = None,
        source_name: str = "",
    ) -> None:
        super().__init__(source_name)
        self.tables = list(tables)
        self.key_columns = dict(key_columns or {})
        self.column_types = dict(column_types or {})
        self.foreign_keys = {k: list(v) for k, v in (foreign_keys or {}).items()}

    # ------------------------------------------------------------ #

    #: one admitted row: (oid, raw row, 1-based row number)
    _Placed = Tuple[Oid, List[str], int]

    def _wrap_into(self, graph: Graph) -> None:
        placed: Dict[str, List["RelationalWrapper._Placed"]] = {}
        by_key: Dict[str, Dict[str, Oid]] = {}
        for table in self.tables:
            placed[table.name], by_key[table.name] = self._wrap_table(graph, table)
        self._wire_foreign_keys(graph, placed, by_key)

    def _wrap_tolerant(
        self, graph: Graph, policy: WrapPolicy, report: QuarantineReport
    ) -> None:
        """Per-row quarantine: a ragged row, an uncoercible cell, or a
        dangling foreign key drops that row (node removed), not the table."""
        placed: Dict[str, List["RelationalWrapper._Placed"]] = {}
        by_key: Dict[str, Dict[str, Oid]] = {}
        for table in self.tables:
            placed[table.name], by_key[table.name] = self._wrap_table(
                graph, table, policy, report
            )
        self._wire_foreign_keys(graph, placed, by_key, policy, report)
        report.admitted += sum(len(rows) for rows in placed.values())

    def _wrap_table(
        self,
        graph: Graph,
        table: Table,
        policy: Optional[WrapPolicy] = None,
        report: Optional[QuarantineReport] = None,
    ) -> Tuple[List["RelationalWrapper._Placed"], Dict[str, Oid]]:
        graph.create_collection(table.name)
        key_column = self.key_columns.get(table.name, "")
        key_index = table.columns.index(key_column) if key_column in table.columns else -1
        fk_columns = {fk.column for fk in self.foreign_keys.get(table.name, ())}
        placed: List[RelationalWrapper._Placed] = []
        by_key: Dict[str, Oid] = {}
        for number, row in enumerate(table.rows, start=1):
            oid: Optional[Oid] = None
            try:
                if len(row) != len(table.columns):
                    raise WrapperError(
                        f"row width {len(row)} != header width "
                        f"{len(table.columns)} in table {table.name!r}"
                    )
                if key_index >= 0 and row[key_index].strip():
                    oid = graph.add_node(Oid(f"{table.name}:{row[key_index].strip()}"))
                else:
                    oid = graph.add_node(hint=table.name)
                for column, cell in zip(table.columns, row):
                    cell = cell.strip()
                    if not cell or column in fk_columns:
                        continue  # NULL -> missing attribute; FKs wired later
                    graph.add_edge(oid, column, self._cell_atom(table.name, column, cell))
            except (WrapperError, ValueError) as error:
                locator = f"{table.name} row {number}"
                if policy is None or report is None:
                    message = getattr(error, "base_message", "") or str(error)
                    raise WrapperError(
                        message, locator=locator, cause=error
                    ) from error
                # an earlier row may own the same keyed oid; keep it then
                if oid is not None and not graph.in_collection(table.name, oid):
                    graph.remove_node(oid)
                self._quarantine(
                    policy, report, locator, error, snippet=",".join(map(str, row))
                )
                continue
            graph.add_to_collection(table.name, oid)
            placed.append((oid, row, number))
            if key_index >= 0 and row[key_index].strip():
                by_key[row[key_index].strip()] = oid
        return placed, by_key

    def _cell_atom(self, table: str, column: str, cell: str) -> Atom:
        pinned = self.column_types.get(f"{table}.{column}")
        if pinned:
            return parse_typed_value(pinned, cell)
        return infer_atom(cell)

    def _wire_foreign_keys(
        self,
        graph: Graph,
        placed: Dict[str, List["RelationalWrapper._Placed"]],
        by_key: Dict[str, Dict[str, Oid]],
        policy: Optional[WrapPolicy] = None,
        report: Optional[QuarantineReport] = None,
    ) -> None:
        for table in self.tables:
            declared = self.foreign_keys.get(table.name)
            if not declared:
                continue
            column_index = {c: i for i, c in enumerate(table.columns)}
            for fk in declared:
                if fk.column not in column_index:
                    # misconfiguration, not dirty data: raise even tolerantly
                    raise WrapperError(
                        f"foreign key column {fk.column!r} missing from "
                        f"table {table.name!r}"
                    )
            admitted = placed.get(table.name, [])
            survivors: List[RelationalWrapper._Placed] = []
            for oid, row, number in admitted:
                try:
                    for fk in declared:
                        cell = row[column_index[fk.column]].strip()
                        if not cell:
                            continue
                        target = by_key.get(fk.target_table, {}).get(cell)
                        if target is None:
                            raise WrapperError(
                                f"dangling foreign key {table.name}.{fk.column} = "
                                f"{cell!r} (no {fk.target_table} row)"
                            )
                        graph.add_edge(oid, fk.edge_label, target)
                except StrudelError as error:
                    locator = f"{table.name} row {number}"
                    if policy is None or report is None:
                        message = getattr(error, "base_message", "") or str(error)
                        raise WrapperError(
                            message, locator=locator, cause=error
                        ) from error
                    graph.remove_node(oid)
                    self._quarantine(
                        policy, report, locator, error,
                        snippet=",".join(map(str, row)),
                    )
                    continue
                survivors.append((oid, row, number))
            placed[table.name] = survivors


def infer_atom(cell: str) -> Atom:
    """Best-effort typing of one cell: integer, float, boolean, string."""
    lowered = cell.lower()
    if lowered in ("true", "false"):
        return Atom(AtomType.BOOLEAN, lowered == "true")
    try:
        return Atom(AtomType.INTEGER, int(cell))
    except ValueError:
        pass
    try:
        return Atom(AtomType.FLOAT, float(cell))
    except ValueError:
        pass
    if lowered.startswith(("http://", "https://", "ftp://")):
        return Atom(AtomType.URL, cell)
    return Atom(AtomType.STRING, cell)
