"""Structured-file wrapper: key/value record files -> data graph.

The AT&T site used "structured files that contain project data" (paper
section 5.1).  The format here is the classic record-jar style:

* records are separated by blank lines;
* each line is ``key: value``; repeating a key makes the attribute
  multi-valued; long values continue on lines indented with whitespace;
* ``%collection Name`` sets the collection for subsequent records;
* ``%type key typename`` declares a DDL atom type for a key;
* ``%id key`` names the field whose value becomes the record's oid
  (prefixed with the collection name);
* ``#`` at line start is a comment.

Missing keys simply produce no edge, so irregular records translate
directly into semistructured objects.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..errors import StrudelError, WrapperError
from ..graph import Graph, Oid, parse_typed_value, string
from ..resilience.quarantine import QuarantineReport, WrapPolicy
from .base import Wrapper

_OnError = Callable[[str, Exception, str], None]


class StructuredFileWrapper(Wrapper):
    """Wraps record-jar text into a graph."""

    source_kind = "structured"

    def __init__(
        self, text: str, default_collection: str = "Records", source_name: str = ""
    ) -> None:
        super().__init__(source_name)
        self.text = text
        self.default_collection = default_collection

    @classmethod
    def from_file(cls, path: str, **kwargs) -> "StructuredFileWrapper":
        with open(path, "r", encoding="utf-8") as handle:
            return cls(handle.read(), source_name=path, **kwargs)

    # ------------------------------------------------------------ #

    def _wrap_into(self, graph: Graph) -> None:
        self._scan(graph)

    def _wrap_tolerant(
        self, graph: Graph, policy: WrapPolicy, report: QuarantineReport
    ) -> None:
        """Per-record quarantine: a bad line discards the record it belongs
        to (skipping to the next blank line); every other record loads."""

        def on_error(locator: str, error: Exception, snippet: str) -> None:
            self._quarantine(policy, report, locator, error, snippet)

        self._scan(graph, on_error, report)

    def _scan(
        self,
        graph: Graph,
        on_error: Optional[_OnError] = None,
        report: Optional[QuarantineReport] = None,
    ) -> None:
        collection = self.default_collection
        types: Dict[str, str] = {}
        id_key = ""
        record: List[Tuple[str, str]] = []
        record_start = 0
        skipping = False  # tolerant mode: discard until the next blank line

        def flush() -> None:
            nonlocal skipping
            if skipping:
                record.clear()
                skipping = False
                return
            if not record:
                return
            try:
                self._add_record(graph, collection, types, id_key, list(record))
                if report is not None:
                    report.admitted += 1
            except (StrudelError, ValueError) as error:
                locator = f"record at line {record_start}"
                if on_error is None:
                    message = getattr(error, "base_message", "") or str(error)
                    raise WrapperError(
                        message, locator=locator, cause=error
                    ) from error
                snippet = "\n".join(f"{k}: {v}" for k, v in record)
                on_error(locator, error, snippet)
            record.clear()

        for line_no, line in enumerate(self.text.splitlines(), start=1):
            if line.startswith("#"):
                continue
            if not line.strip():
                flush()
                continue
            if skipping:
                continue
            if line.startswith("%"):
                flush()
                try:
                    collection, id_key = self._directive(
                        line, line_no, collection, types, id_key
                    )
                except WrapperError as error:
                    if on_error is None:
                        raise WrapperError(
                            error.base_message,
                            locator=f"line {line_no}",
                            cause=error,
                        ) from error
                    on_error(f"line {line_no}", error, line.strip())
                continue
            try:
                if line[0].isspace():
                    if not record:
                        raise WrapperError("continuation line with no record")
                    key, value = record[-1]
                    record[-1] = (key, value + " " + line.strip())
                    continue
                if ":" not in line:
                    raise WrapperError(f"expected 'key: value': {line.strip()!r}")
            except WrapperError as error:
                if on_error is None:
                    raise WrapperError(
                        error.base_message, locator=f"line {line_no}", cause=error
                    ) from error
                start = record_start or line_no
                on_error(
                    f"record at line {start}", error,
                    "\n".join([f"{k}: {v}" for k, v in record] + [line.strip()]),
                )
                record.clear()
                skipping = True
                continue
            if not record:
                record_start = line_no
            key, _, value = line.partition(":")
            record.append((key.strip(), value.strip()))
        flush()

    def _directive(
        self,
        line: str,
        line_no: int,
        collection: str,
        types: Dict[str, str],
        id_key: str,
    ) -> Tuple[str, str]:
        words = line[1:].split()
        if not words:
            raise WrapperError("empty directive")
        name = words[0].lower()
        if name == "collection" and len(words) == 2:
            return words[1], id_key
        if name == "type" and len(words) == 3:
            types[words[1]] = words[2]
            return collection, id_key
        if name == "id" and len(words) == 2:
            return collection, words[1]
        raise WrapperError(f"bad directive: {line!r}")

    def _add_record(
        self,
        graph: Graph,
        collection: str,
        types: Dict[str, str],
        id_key: str,
        fields: List[Tuple[str, str]],
    ) -> None:
        oid: Optional[Oid] = None
        if id_key:
            for key, value in fields:
                if key == id_key and value:
                    oid = Oid(f"{collection}:{value}")
                    break
        node = graph.add_node(oid, hint=collection.lower())
        for key, value in fields:
            declared = types.get(key)
            atom = parse_typed_value(declared, value) if declared else string(value)
            graph.add_edge(node, key, atom)
        graph.add_to_collection(collection, node)
