"""XML wrapper: element trees -> data graph.

The paper's data model "was introduced to manage semistructured data"
[1, 6] -- the lineage that became XML within a year of publication.
This wrapper closes the loop: XML documents map onto the labeled-graph
model with no impedance at all.

Mapping:

* every element becomes a node;
* an element's XML attributes become STRING-atom edges named after the
  attribute;
* non-blank element text becomes a ``text`` edge (STRING atom);
* a child element becomes an edge labeled with the child's tag, pointing
  at the child's node -- repeated tags give multi-valued attributes, in
  document order;
* elements matching ``collection_tags`` (default: the children of the
  document root) are put in a collection named after their tag, so
  ``<bibliography><pub>...`` yields a ``pub`` collection;
* an element attribute named by ``id_attribute`` (default ``id``) names
  the node's oid (prefixed with the tag), making cross-documents
  references stable.

Leaf elements (no children, no XML attributes) are *flattened*: instead
of a node wrapping one text atom, the parent gets an edge straight to
the atom -- ``<year>1998</year>`` becomes ``year -> 1998`` just like the
BibTeX wrapper produces, with numeric-looking text typed as numbers.
"""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree
from typing import Optional, Sequence

from ..errors import WrapperError
from ..graph import Atom, AtomType, Graph, Oid
from .base import Wrapper
from .relational import infer_atom


class XmlWrapper(Wrapper):
    """Wraps one XML document."""

    source_kind = "xml"

    def __init__(
        self,
        text: str,
        collection_tags: Optional[Sequence[str]] = None,
        id_attribute: str = "id",
        source_name: str = "",
    ) -> None:
        super().__init__(source_name)
        self.text = text
        self.collection_tags = (
            list(collection_tags) if collection_tags is not None else None
        )
        self.id_attribute = id_attribute

    @classmethod
    def from_file(cls, path: str, **kwargs) -> "XmlWrapper":
        with open(path, "r", encoding="utf-8") as handle:
            return cls(handle.read(), source_name=path, **kwargs)

    # ------------------------------------------------------------ #

    def _wrap_into(self, graph: Graph) -> None:
        try:
            root = ElementTree.fromstring(self.text)
        except ElementTree.ParseError as error:
            line, _ = getattr(error, "position", (0, 0))
            raise WrapperError(
                f"malformed XML: {error}",
                locator=f"line {line}" if line else "",
                cause=error,
            ) from error
        collection_tags = self.collection_tags
        if collection_tags is None:
            collection_tags = sorted({child.tag for child in root})
        for tag in collection_tags:
            graph.create_collection(tag)
        self._element_node(graph, root, set(collection_tags))

    def _element_node(self, graph: Graph, element, collection_tags) -> Oid:
        identifier = element.get(self.id_attribute)
        if identifier:
            oid = graph.add_node(Oid(f"{element.tag}:{identifier}"))
        else:
            oid = graph.add_node(hint=element.tag)
        for name, value in element.attrib.items():
            graph.add_edge(oid, name, infer_atom(value))
        text = (element.text or "").strip()
        if text:
            graph.add_edge(oid, "text", Atom(AtomType.STRING, text))
        for child in element:
            if _is_leaf(child):
                value = (child.text or "").strip()
                graph.add_edge(oid, child.tag, infer_atom(value))
            else:
                child_oid = self._element_node(graph, child, collection_tags)
                graph.add_edge(oid, child.tag, child_oid)
            if child.tag in collection_tags:
                target = graph.targets(oid, child.tag)[-1]
                if isinstance(target, Oid):
                    graph.add_to_collection(child.tag, target)
        return oid


def _is_leaf(element) -> bool:
    return len(element) == 0 and not element.attrib
