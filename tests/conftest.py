"""Shared fixtures: small graphs used across the suite."""

import pytest

from repro.graph import Graph, image_file, integer, string


@pytest.fixture
def pub_graph():
    """Three publications with the paper's Fig. 2 irregularities."""
    graph = Graph("pubs")
    entries = [
        {"title": "Strudel", "year": 1998, "month": "June",
         "journal": "SIGMOD", "author": ["Mary", "Dan"]},
        {"title": "WebOQL", "year": 1998,
         "booktitle": "ICDE", "author": ["Gustavo"]},
        {"title": "Tsimmis", "year": 1995,
         "booktitle": "VLDB", "author": ["Hector", "Jennifer"]},
    ]
    for entry in entries:
        oid = graph.add_node(hint="pub")
        for label, value in entry.items():
            values = value if isinstance(value, list) else [value]
            for one in values:
                atom = integer(one) if isinstance(one, int) else string(one)
                graph.add_edge(oid, label, atom)
        graph.add_to_collection("Publications", oid)
    return graph


@pytest.fixture
def chain_graph():
    """a -next-> b -next-> c -val-> "end", plus an image leaf on b."""
    graph = Graph("chain")
    a = graph.add_node()
    b = graph.add_node()
    c = graph.add_node()
    graph.add_edge(a, "next", b)
    graph.add_edge(b, "next", c)
    graph.add_edge(c, "val", string("end"))
    graph.add_edge(b, "figure", image_file("b.gif"))
    graph.add_to_collection("Roots", a)
    return graph, (a, b, c)
