"""Unit tests for the unified site analyzer (repro.analysis)."""

import importlib.util
import json
import os

import pytest

from repro.analysis import (
    Analyzer,
    DiagnosticReport,
    RULES,
    Severity,
    Span,
    Suppressions,
    analyze,
    audit_diagnostics,
    check_constraints,
    check_program,
    check_schema,
    check_templates,
    refute_static,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.diagnostics import make
from repro.core import SiteSchema
from repro.core.audit import AuditReport
from repro.core.constraints import CheckResult
from repro.errors import SiteAnalysisError
from repro.repository import ddl
from repro.struql import parse
from repro.struql.parser import _Parser
from repro.template import TemplateSet
from repro.workloads import HOMEPAGE_QUERY

DATA_DDL = """
collection Publications
collection Images

object "&p.1" {
  title: "Alpha"
  year: "1998"
  author: "Mary"
}

object "&p.2" {
  title: "Beta"
  year: "1997"
  author: "Dan"
}

object "&i.1" {
  url: "a.gif"
}

member Publications: "&p.1", "&p.2"
member Images: "&i.1"
"""

SITE_QUERY = """\
create Root()
where Publications(x), x -> "title" -> t
create Page(x)
link Root() -> "Paper" -> Page(x),
     Page(x) -> "Title" -> t
collect Pages(Page(x))
"""


@pytest.fixture(scope="module")
def graph():
    return ddl.loads(DATA_DDL, "test")


def _program(text):
    """Parse without scope validation, like the analyzer does."""
    program = _Parser(text).parse_program()
    program.source_text = text
    return program


def _codes(diagnostics):
    return sorted({d.code for d in diagnostics})


# ------------------------------------------------------------------ #
# the diagnostic model


class TestDiagnosticModel:
    def test_span_rendering(self):
        assert str(Span("a.struql", 3, 7)) == "a.struql:3:7"
        assert str(Span("a.struql", 3)) == "a.struql:3"
        assert str(Span("a.struql")) == "a.struql"
        assert str(Span()) == ""
        assert not Span()
        assert Span("f")

    def test_severity_defaults_from_registry(self):
        assert make("SQ001", "m").severity is Severity.ERROR
        assert make("SQ003", "m").severity is Severity.WARNING
        assert make("TPL002", "m").severity is Severity.INFO
        # unknown codes default to warning rather than crash
        assert make("XX999", "m").severity is Severity.WARNING

    def test_diagnostic_str_contains_span_and_code(self):
        diag = make("SQ001", "bad label", span=Span("q.struql", 2, 5))
        assert str(diag) == "q.struql:2:5: error[SQ001] bad label"

    def test_registry_is_complete(self):
        for family, count in (("SQ", 8), ("SCH", 4), ("TPL", 4),
                              ("CON", 5), ("AUD", 4)):
            members = [c for c in RULES if c.startswith(family)]
            assert len(members) == count, family
        for code, rule in RULES.items():
            assert rule.code == code
            assert rule.summary

    def test_report_dedup_ignores_span(self):
        report = DiagnosticReport()
        report.add(make("SQ001", "m", subject="s", span=Span("f", 1)))
        report.add(make("SQ001", "m", subject="s", span=Span("f", 9)))
        assert len(report.diagnostics) == 1

    def test_report_counts_and_exit_code(self):
        report = DiagnosticReport()
        report.add(make("SQ003", "w"))
        report.add(make("TPL002", "i"))
        assert report.ok and report.exit_code == 0
        report.add(make("SQ001", "e"))
        assert not report.ok and report.exit_code == 1
        assert report.summary() == "1 error(s), 1 warning(s), 1 note(s)"

    def test_sorted_orders_by_location_then_severity(self):
        report = DiagnosticReport()
        report.add(make("TPL002", "i", span=Span("b", 1)))
        report.add(make("SQ001", "e", span=Span("a", 9)))
        report.add(make("SQ003", "w", span=Span("a", 2)))
        assert [d.code for d in report.sorted()] == [
            "SQ003", "SQ001", "TPL002"
        ]

    def test_suppress_by_code_and_subject(self):
        report = DiagnosticReport()
        report.add(make("SQ001", "e1", subject="titel"))
        report.add(make("SQ003", "w1", subject="y"))
        report.add(make("SQ003", "w2", subject="z"))
        report.apply_suppressions(Suppressions(["SQ001", "SQ003:y"]))
        assert [d.subject for d in report.diagnostics] == ["z"]
        assert len(report.suppressed) == 2
        assert "2 suppressed" in report.summary()

    def test_suppressions_matching(self):
        specs = Suppressions([" SQ001 ", "SQ003: y ", ""])
        assert specs.matches(make("SQ001", "m", subject="anything"))
        assert specs.matches(make("SQ003", "m", subject="y"))
        assert not specs.matches(make("SQ003", "m", subject="z"))
        assert not Suppressions([])


# ------------------------------------------------------------------ #
# STRUQL query checks


class TestQueryChecks:
    def _check(self, text, graph=None):
        from repro.repository.summary import label_summary

        summary = label_summary(graph) if graph is not None else None
        return check_program(_program(text), summary, query_file="q")

    def test_unknown_label_is_error_with_suggestion(self, graph):
        diags, dead = self._check(SITE_QUERY.replace('"title"', '"titel"'), graph)
        errors = [d for d in diags if d.code == "SQ001"]
        assert errors and errors[0].severity is Severity.ERROR
        assert "did you mean 'title'?" in errors[0].message
        assert errors[0].span.line == 2
        assert dead  # the block cannot match anything

    def test_label_absent_from_collection_is_warning(self, graph):
        diags, dead = self._check(
            'where Images(i), i -> "title" -> t\ncreate P(i)\n'
            'link P(i) -> "T" -> t', graph
        )
        warnings = [d for d in diags if d.code == "SQ001"]
        assert warnings and warnings[0].severity is Severity.WARNING
        assert "no member of collection 'Images'" in warnings[0].message
        assert not dead

    def test_unknown_collection_kills_block(self, graph):
        diags, dead = self._check(
            'where Nothing(x)\ncreate P(x)\nlink P(x) -> "A" -> x\n'
            "collect Ps(P(x))", graph
        )
        assert "SQ007" in _codes(diags)
        assert "SCH002" in _codes(diags)  # link clause in dead block
        assert "SCH003" in _codes(diags)  # collect clause in dead block
        assert dead

    def test_arity_mismatch_reports_second_use(self, graph):
        diags, _ = self._check(
            SITE_QUERY.replace('Root() -> "Paper" -> Page(x)',
                               'Root() -> "Paper" -> Page()'), graph
        )
        errors = [d for d in diags if d.code == "SQ002"]
        assert len(errors) == 1
        assert "0 argument(s) here but 1 at line 3" in errors[0].message
        assert errors[0].span.line == 4

    def test_unused_variable_warns_with_span(self, graph):
        diags, _ = self._check(
            'where Publications(x), x -> "year" -> y\ncreate P(x)', graph
        )
        unused = [d for d in diags if d.code == "SQ003"]
        assert [d.subject for d in unused] == ["y"]
        assert unused[0].severity is Severity.WARNING
        assert unused[0].span.line == 1

    def test_variable_used_in_nested_block_is_not_unused(self, graph):
        diags, _ = self._check(
            'where Publications(x), x -> "year" -> y\ncreate P(x)\n'
            '{ where y = "1998" link P(x) -> "Y" -> y }', graph
        )
        assert "SQ003" not in _codes(diags)

    def test_unbound_variable_in_construction(self, graph):
        diags, _ = self._check(
            "where Publications(x)\ncreate P(x)\nlink P(x) -> \"A\" -> z",
            graph,
        )
        unbound = [d for d in diags if d.code == "SQ004"]
        assert [d.subject for d in unbound] == ["z"]
        assert unbound[0].severity is Severity.ERROR

    def test_unsatisfiable_equalities(self, graph):
        diags, dead = self._check(
            'where Publications(x), x -> "year" -> y, y = "1998", '
            'y = "1997"\ncreate P(x)\ncollect Ps(P(x))', graph
        )
        assert "SQ005" in _codes(diags)
        assert "SCH003" in _codes(diags)
        assert dead

    def test_equality_then_inequality_contradiction(self, graph):
        diags, _ = self._check(
            'where Publications(x), x -> "year" -> y, y = "1998", '
            'y != "1998"\ncreate P(x)', graph
        )
        assert "SQ005" in _codes(diags)

    def test_contradiction_inherited_into_nested_block(self, graph):
        diags, dead = self._check(
            'where Publications(x), x -> "year" -> y, y = "1998"\n'
            'create P(x)\n'
            '{ where y = "1997" link P(x) -> "Y" -> y }', graph
        )
        assert "SQ005" in _codes(diags)
        assert dead  # the nested block is dead, not the outer one

    def test_cartesian_product_warns(self, graph):
        diags, _ = self._check(
            "where Publications(x), Publications(y)\n"
            'create P(x)\nlink P(x) -> "Other" -> y', graph
        )
        assert "SQ006" in _codes(diags)

    def test_joined_conditions_do_not_warn(self, graph):
        diags, _ = self._check(SITE_QUERY, graph)
        assert "SQ006" not in _codes(diags)

    def test_inherited_variable_anchors_join(self, graph):
        # the nested block's conditions all touch inherited x: no product
        diags, _ = self._check(
            'where Publications(x), x -> "year" -> y\ncreate P(x)\n'
            '{ where x -> "title" -> t link P(x) -> "T" -> t }', graph
        )
        assert "SQ006" not in _codes(diags)

    def test_unknown_label_in_negation_is_warning(self, graph):
        diags, dead = self._check(
            'where Publications(x), not(x -> "bogus_label" -> "v")\n'
            "create P(x)", graph
        )
        warnings = [d for d in diags if d.code == "SQ001"]
        assert warnings and warnings[0].severity is Severity.WARNING
        assert "always true" in warnings[0].message
        assert not dead

    def test_unknown_path_leaf_label_is_warning(self, graph):
        diags, dead = self._check(
            'where Publications(x), x -> ("bogus_label" | "title")* -> v\n'
            'create P(x)\nlink P(x) -> "V" -> v', graph
        )
        warnings = [d for d in diags if d.code == "SQ001"]
        assert warnings and warnings[0].severity is Severity.WARNING
        assert not dead

    def test_without_summary_vocabulary_checks_are_skipped(self):
        diags, dead = self._check(SITE_QUERY.replace('"title"', '"titel"'))
        assert "SQ001" not in _codes(diags)
        assert not dead


# ------------------------------------------------------------------ #
# site-schema checks


class TestSchemaChecks:
    def _schema(self, text):
        return SiteSchema.from_program(parse(text))

    def test_clean_schema_has_no_findings(self):
        assert check_schema(self._schema(SITE_QUERY)) == []

    def test_unreachable_page_type(self):
        schema = self._schema(
            SITE_QUERY + "where Publications(o)\ncreate Orphan(o)\n"
            'link Orphan(o) -> "Out" -> o\ncollect Orphans(Orphan(o))'
        )
        diags = check_schema(schema, query_file="q")
        assert _codes(diags) == ["SCH001"]
        assert diags[0].subject == "Orphan"
        assert diags[0].span.line == 8

    def test_no_root_page_type(self):
        schema = self._schema(
            "where Publications(x)\ncreate P(x)\ncollect Ps(P(x))"
        )
        diags = check_schema(schema)
        assert _codes(diags) == ["SCH004"]

    def test_explicit_roots_rescue(self):
        schema = self._schema(
            'where Publications(x)\ncreate P(x)\nlink P(x) -> "Self" -> P(x)'
        )
        assert check_schema(schema, roots=["P()"]) == []

    def test_dead_block_edges_do_not_count(self):
        text = (
            "create Root()\n"
            "where Publications(x)\ncreate P(x)\n"
            'link Root() -> "Paper" -> P(x)'
        )
        schema = SiteSchema.from_program(parse(text))
        # the only edge into P comes from block Q2; if Q2 is dead, P is
        # unreachable
        live = check_schema(schema)
        assert live == []
        dead = check_schema(schema, dead_blocks=frozenset(["Q2"]))
        assert _codes(dead) == ["SCH001"]


# ------------------------------------------------------------------ #
# template checks


class TestTemplateChecks:
    def _schema(self):
        return SiteSchema.from_program(parse(SITE_QUERY))

    def test_typo_becomes_tpl001_error(self):
        templates = TemplateSet()
        templates.add("Pages", "<h1><SFMT Titel></h1>")
        templates.for_collection("Pages", "Pages")
        diags = check_templates(templates, self._schema())
        assert _codes(diags) == ["TPL001"]
        assert diags[0].severity is Severity.ERROR
        assert diags[0].span.file == "<template:Pages>"
        assert diags[0].span.line == 1

    def test_template_line_numbers_propagate(self):
        templates = TemplateSet()
        templates.add("Pages", "<html>\n<p>ok</p>\n<SFMT Titel>\n</html>")
        templates.for_collection("Pages", "Pages")
        files = {"Pages": "tpl/Pages.tmpl"}
        diags = check_templates(templates, self._schema(), files)
        assert diags[0].span.file == "tpl/Pages.tmpl"
        assert diags[0].span.line == 3

    def test_unassignable_template_is_tpl003(self):
        templates = TemplateSet()
        templates.add("x", "<SFMT Title>")
        templates.for_collection("Nowhere", "x")
        templates.add("y", "<SFMT Title>")
        templates.for_object("Ghost()", "y")
        diags = check_templates(templates, self._schema())
        assert _codes(diags) == ["TPL003"]
        assert sorted(d.subject for d in diags) == ["Ghost()", "Nowhere"]
        assert all(d.severity is Severity.WARNING for d in diags)

    def test_object_specific_assignment_is_not_tpl003(self):
        templates = TemplateSet()
        templates.add("r", "<SFMT Paper UL>")
        templates.for_object("Root()", "r")
        assert check_templates(templates, self._schema()) == []


# ------------------------------------------------------------------ #
# constraint checks


class TestConstraintChecks:
    def _schema(self):
        return SiteSchema.from_program(parse(SITE_QUERY))

    def _one(self, constraint, schema=None):
        diags = check_constraints(
            [constraint], schema or self._schema(),
            constraint_file="c.txt", lines=[7],
        )
        assert len(diags) == 1
        return diags[0]

    def test_verified_constraint_is_con002(self):
        diag = self._one(
            'forall X (Page(X) => exists Y (Root(Y) and Y -> "Paper" -> X))'
        )
        assert diag.code == "CON002"
        assert diag.severity is Severity.INFO
        assert diag.span.file == "c.txt" and diag.span.line == 7

    def test_refuted_constraint_is_con004(self):
        diag = self._one(
            'forall X (Page(X) => exists Y (Page(Y) and Y -> "Next" -> X))'
        )
        assert diag.code == "CON004"
        assert diag.severity is Severity.ERROR
        assert '"Next"' in diag.message

    def test_undecidable_constraint_is_con003(self):
        schema = SiteSchema.from_program(parse(HOMEPAGE_QUERY))
        diag = self._one(
            "forall X (Presentations(X) => exists Y (RootPage(Y) and "
            "Y -> * -> X))",
            schema,
        )
        assert diag.code == "CON003"
        assert diag.severity is Severity.WARNING

    def test_malformed_constraint_is_con001(self):
        diag = self._one("forall X (")
        assert diag.code == "CON001"
        assert diag.severity is Severity.ERROR

    def test_vacuous_class_is_con005(self):
        diag = self._one(
            'forall X (Nowhere(X) => exists Y (Root(Y) and Y -> "Paper" -> X))'
        )
        assert diag.code == "CON005"
        assert "'Nowhere'" in diag.message

    def test_constraint_lines_default_to_ordinal(self):
        diags = check_constraints(
            ["forall X (", "forall Y ("], self._schema()
        )
        assert [d.span.line for d in diags] == [1, 2]

    def test_refute_static_direct(self):
        schema = self._schema()
        assert refute_static(
            'forall X (Page(X) => exists Y (Page(Y) and Y -> "Next" -> X))',
            schema,
        )
        assert not refute_static(
            'forall X (Page(X) => exists Y (Root(Y) and Y -> "Paper" -> X))',
            schema,
        )
        # not the supported pattern: no refutation claimed
        assert not refute_static("exists X (Page(X))", schema)

    def test_refutation_respects_arc_variable_edges(self):
        # Root reaches Page over an arc-variable edge, which may carry
        # any label, so "Anything" cannot be refuted
        text = (
            "create Root()\n"
            "where Publications(x), x -> l -> v\ncreate Page(x)\n"
            "link Root() -> l -> Page(x)"
        )
        schema = SiteSchema.from_program(parse(text))
        assert not refute_static(
            'forall X (Page(X) => exists Y (Root(Y) and '
            'Y -> "Anything" -> X))',
            schema,
        )


# ------------------------------------------------------------------ #
# renderers


@pytest.fixture
def mixed_report():
    report = DiagnosticReport()
    report.add(make("SQ001", "unknown label 'titel'", subject="titel",
                    span=Span("q.struql", 2, 10), source="query"))
    report.add(make("SQ003", "variable y unused", subject="y",
                    span=Span("q.struql", 1, 24), source="query"))
    report.add(make("TPL002", "unknowable attribute", subject="A:x",
                    span=Span("A.tmpl", 3), source="template"))
    return report


class TestRenderers:
    def test_text(self, mixed_report):
        text = render_text(mixed_report)
        lines = text.splitlines()
        # sorted by file, then line: A.tmpl first, then q.struql
        assert lines[0] == "A.tmpl:3: info[TPL002] unknowable attribute"
        assert lines[1] == (
            "q.struql:1:24: warning[SQ003] variable y unused"
        )
        assert lines[-1] == "1 error(s), 1 warning(s), 1 note(s)"

    def test_text_verbose_shows_suppressed(self, mixed_report):
        mixed_report.apply_suppressions(Suppressions(["SQ003"]))
        assert "SQ003" not in render_text(mixed_report)
        verbose = render_text(mixed_report, verbose=True)
        assert "suppressed:" in verbose and "SQ003" in verbose

    def test_json(self, mixed_report):
        payload = json.loads(render_json(mixed_report))
        assert payload["errors"] == 1
        assert payload["warnings"] == 1
        assert payload["notes"] == 1
        assert payload["ok"] is False
        second = payload["diagnostics"][1]
        assert second["code"] == "SQ003"
        assert second["span"] == {"file": "q.struql", "line": 1, "column": 24}

    def test_sarif_structure(self, mixed_report):
        doc = json.loads(render_sarif(mixed_report))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-analyze"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == ["SQ001", "SQ003", "TPL002"]
        levels = [r["level"] for r in run["results"]]
        assert sorted(levels) == ["error", "note", "warning"]
        located = run["results"][1]["locations"][0]["physicalLocation"]
        assert located["artifactLocation"]["uri"] == "q.struql"
        assert located["region"]["startLine"] == 1
        assert located["region"]["startColumn"] == 24

    def test_sarif_omits_empty_regions(self):
        report = DiagnosticReport()
        report.add(make("SCH004", "no roots", span=Span("q")))
        doc = json.loads(render_sarif(report))
        location = doc["runs"][0]["results"][0]["locations"][0]
        assert "region" not in location["physicalLocation"]


# ------------------------------------------------------------------ #
# the Analyzer facade


class TestAnalyzer:
    def test_syntax_error_becomes_sq000(self, graph):
        report = analyze("where Publications(", data_graph=graph)
        assert report.codes() == ["SQ000"]
        assert report.diagnostics[0].span.line >= 1
        assert report.exit_code == 1

    def test_clean_specification(self, graph):
        templates = TemplateSet()
        templates.add("Pages", "<h2><SFMT Title></h2>")
        templates.for_collection("Pages", "Pages")
        report = analyze(SITE_QUERY, templates=templates, data_graph=graph)
        assert report.ok, render_text(report)

    def test_all_passes_contribute(self, graph):
        templates = TemplateSet()
        templates.add("Pages", "<SFMT Titel>")
        templates.for_collection("Pages", "Pages")
        report = analyze(
            SITE_QUERY.replace('"title"', '"titel"'),
            templates=templates,
            constraints=["forall X ("],
            data_graph=graph,
        )
        codes = report.codes()
        assert "SQ001" in codes      # query pass
        assert "SCH001" in codes     # schema pass (dead block kills Page)
        assert "TPL001" in codes     # template pass
        assert "CON001" in codes     # constraint pass

    def test_suppression_via_run(self, graph):
        analyzer = Analyzer(
            SITE_QUERY.replace('"title"', '"titel"'), data_graph=graph
        )
        report = analyzer.run(suppress=["SQ001", "SCH001", "SCH002", "SCH003"])
        assert report.ok
        assert len(report.suppressed) >= 4

    def test_pending_diagnostics_ride_along(self, graph):
        analyzer = Analyzer(SITE_QUERY, data_graph=graph)
        analyzer.pending.append(make("TPL004", "broken template"))
        report = analyzer.run()
        assert "TPL004" in report.codes()

    def test_without_data_graph_analysis_is_structural(self):
        report = analyze(SITE_QUERY.replace('"title"', '"titel"'))
        assert report.ok

    def test_for_definition_names_sources(self, graph):
        from repro.core import SiteDefinition

        definition = SiteDefinition("demo", SITE_QUERY, TemplateSet())
        analyzer = Analyzer.for_definition(definition, data_graph=graph)
        assert analyzer.query_file == "<demo.struql>"


class TestBuilderIntegration:
    def _builder(self, graph, query=SITE_QUERY, constraints=()):
        from repro.core import SiteBuilder, SiteDefinition

        templates = TemplateSet()
        templates.add("Pages", "<h2><SFMT Title></h2>")
        templates.for_collection("Pages", "Pages")
        templates.add("root", "<SFMT Paper UL>")
        templates.for_object("Root()", "root")
        builder = SiteBuilder(graph)
        builder.define(
            SiteDefinition("demo", query, templates,
                           constraints=list(constraints))
        )
        return builder

    def test_builder_analyze(self, graph):
        report = self._builder(graph).analyze("demo")
        assert isinstance(report, DiagnosticReport)
        assert report.ok

    def test_gate_passes_clean_site(self, graph):
        built = self._builder(graph).build("demo", gate=True)
        assert built.pages

    def test_gate_blocks_broken_site(self, graph):
        builder = self._builder(
            graph, query=SITE_QUERY.replace('"title"', '"titel"')
        )
        with pytest.raises(SiteAnalysisError) as info:
            builder.build("demo", gate=True)
        assert "site was not built" in str(info.value)
        assert not info.value.report.ok

    def test_ungated_build_still_works(self, graph):
        builder = self._builder(
            graph, query=SITE_QUERY.replace('"title"', '"titel"')
        )
        built = builder.build("demo")
        assert built.site_graph is not None


# ------------------------------------------------------------------ #
# the audit bridge


class TestAuditBridge:
    def test_dangling_link_is_aud001(self):
        report = AuditReport(pages=2, dangling_links=[("a.html", "b.html")])
        out = audit_diagnostics(None, report=report)
        assert out.codes() == ["AUD001"]
        assert out.diagnostics[0].severity is Severity.ERROR
        assert out.diagnostics[0].span.file == "a.html"

    def test_unreachable_page_deduped_against_sch001(self):
        report = AuditReport(pages=2, unreachable_pages=["Orphan(p1)"])
        out = audit_diagnostics(None, report=report)
        assert out.codes() == ["AUD002"]
        static = DiagnosticReport()
        static.add(make("SCH001", "unreachable", subject="Orphan"))
        deduped = audit_diagnostics(None, report=report, static=static)
        assert deduped.diagnostics == []

    def test_empty_page_deduped_against_tpl001(self):
        report = AuditReport(pages=2, empty_pages=["p.html"])
        out = audit_diagnostics(None, report=report)
        assert out.codes() == ["AUD003"]
        static = DiagnosticReport()
        static.add(make("TPL001", "typo", subject="Pages:Titel"))
        deduped = audit_diagnostics(None, report=report, static=static)
        assert deduped.diagnostics == []

    def test_violated_constraint_deduped_against_con004(self):
        constraint = "forall X (Page(X))"
        report = AuditReport(
            pages=1,
            constraint_results={
                constraint: CheckResult(holds=False, witness={"X": "p1"}),
                "other": CheckResult(holds=True),
            },
        )
        out = audit_diagnostics(None, report=report)
        assert out.codes() == ["AUD004"]
        assert "counterexample" in out.diagnostics[0].message
        static = DiagnosticReport()
        static.add(make("CON004", "refuted", subject=constraint))
        deduped = audit_diagnostics(None, report=report, static=static)
        assert deduped.diagnostics == []

    def test_shared_suppression_mechanism(self):
        report = AuditReport(pages=1, dangling_links=[("a", "b")])
        out = audit_diagnostics(None, report=report, suppress=["AUD001"])
        assert out.diagnostics == [] and len(out.suppressed) == 1


# ------------------------------------------------------------------ #
# the fixture corpus, through the CI driver


REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DRIVER = os.path.join(REPO, "examples", "analyze_fixtures.py")
FIXTURES = os.path.join(REPO, "examples", "fixtures")


@pytest.fixture(scope="module")
def driver():
    spec = importlib.util.spec_from_file_location("analyze_fixtures", DRIVER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestFixtureCorpus:
    def test_clean_fixtures_have_zero_errors(self, driver):
        for name in sorted(os.listdir(os.path.join(FIXTURES, "clean"))):
            directory = os.path.join(FIXTURES, "clean", name)
            if not os.path.isdir(directory):
                continue
            report = driver.analyze_fixture(directory)
            assert report.ok, f"{name}: {render_text(report)}"

    @pytest.mark.parametrize(
        "name,code,line",
        [
            ("unknown_label", "SQ001", 3),
            ("skolem_arity", "SQ002", 6),
            ("unreachable_page", "SCH001", 4),
            ("template_typo", "TPL001", 2),
            ("violated_constraint", "CON004", 2),
        ],
    )
    def test_broken_fixture_reports_planted_defect(self, driver, name, code, line):
        directory = os.path.join(FIXTURES, "broken", name)
        report = driver.analyze_fixture(directory)
        assert not report.ok
        matches = [d for d in report.by_code(code) if d.span.line == line]
        assert matches, f"{code}@{line} missing in: {render_text(report)}"

    def test_driver_expectations_all_pass(self, driver):
        for name in sorted(os.listdir(os.path.join(FIXTURES, "broken"))):
            directory = os.path.join(FIXTURES, "broken", name)
            if not os.path.isdir(directory):
                continue
            report = driver.analyze_fixture(directory)
            assert driver.check_broken(directory, report) == []

    def test_driver_main_writes_sarif(self, driver, tmp_path):
        assert driver.main(["analyze_fixtures.py", str(tmp_path)]) == 0
        written = sorted(p.name for p in tmp_path.iterdir())
        assert "broken-unknown_label.sarif" in written
        assert "clean-homepage.sarif" in written
        doc = json.loads((tmp_path / "broken-template_typo.sarif").read_text())
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"]
