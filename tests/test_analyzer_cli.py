"""Tests for the `repro analyze` CLI and its exit-code contract."""

import json
import os

import pytest

from repro.cli import main

DATA_DDL = """
collection Publications

object "&p.1" {
  title: "Alpha"
  year: "1998"
}

member Publications: "&p.1"
"""

CLEAN_QUERY = """\
create Root()
where Publications(x), x -> "title" -> t
create Page(x)
link Root() -> "Paper" -> Page(x),
     Page(x) -> "Title" -> t
collect Pages(Page(x))
"""

BROKEN_QUERY = CLEAN_QUERY.replace('"title"', '"titel"')


@pytest.fixture
def workspace(tmp_path):
    (tmp_path / "data.ddl").write_text(DATA_DDL)
    (tmp_path / "site.struql").write_text(CLEAN_QUERY)
    (tmp_path / "broken.struql").write_text(BROKEN_QUERY)
    templates = tmp_path / "templates"
    templates.mkdir()
    (templates / "Root__.tmpl").write_text("<SFMT Paper UL>\n")
    (templates / "Pages.tmpl").write_text("<h2><SFMT Title></h2>\n")
    return tmp_path


def _analyze(workspace, *extra):
    return main([
        "analyze", "--query", str(workspace / "site.struql"),
        "--data", str(workspace / "data.ddl"), *extra,
    ])


class TestExitCodes:
    def test_clean_site_exits_zero(self, workspace, capsys):
        assert _analyze(workspace) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_error_findings_exit_one(self, workspace, capsys):
        code = main([
            "analyze", "--query", str(workspace / "broken.struql"),
            "--data", str(workspace / "data.ddl"),
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "SQ001" in out and "titel" in out

    def test_crash_exits_two(self, workspace, capsys):
        code = main([
            "analyze", "--query", str(workspace / "does-not-exist.struql"),
        ])
        assert code == 2
        assert "repro analyze: error:" in capsys.readouterr().err

    def test_unreadable_data_graph_exits_two(self, workspace, capsys):
        (workspace / "bad.ddl").write_text("object {{{")
        code = _analyze(workspace, "--data", str(workspace / "bad.ddl"))
        assert code == 2

    def test_strict_turns_warnings_into_failure(self, workspace):
        # an unused variable is only a warning: exit 0 normally...
        (workspace / "warn.struql").write_text(
            CLEAN_QUERY.replace(
                'x -> "title" -> t',
                'x -> "title" -> t, x -> "year" -> y',
            )
        )
        args = [
            "analyze", "--query", str(workspace / "warn.struql"),
            "--data", str(workspace / "data.ddl"),
        ]
        assert main(args) == 0
        # ...but --strict gates on warnings too
        assert main(args + ["--strict"]) == 1


class TestInputs:
    def test_templates_are_linted(self, workspace, capsys):
        (workspace / "templates" / "Pages.tmpl").write_text("<SFMT Titel>\n")
        code = _analyze(
            workspace, "--templates", str(workspace / "templates")
        )
        assert code == 1
        assert "TPL001" in capsys.readouterr().out

    def test_template_syntax_error_is_tpl004(self, workspace, capsys):
        (workspace / "templates" / "Pages.tmpl").write_text("<SFOR x IN>\n")
        code = _analyze(
            workspace, "--templates", str(workspace / "templates")
        )
        assert code == 1
        assert "TPL004" in capsys.readouterr().out

    def test_inline_constraint(self, workspace, capsys):
        code = _analyze(
            workspace, "--constraint",
            'forall X (Page(X) => exists Y (Root(Y) and Y -> "Paper" -> X))',
        )
        assert code == 0
        assert "CON002" in capsys.readouterr().out

    def test_constraints_file_lines_in_spans(self, workspace, capsys):
        constraints = workspace / "c.txt"
        constraints.write_text(
            "# comment line\n"
            "\n"
            'forall X (Page(X) => exists Y (Page(Y) and Y -> "Next" -> X))\n'
        )
        code = _analyze(workspace, "--constraints-file", str(constraints))
        assert code == 1
        assert f"{constraints}:3" in capsys.readouterr().out

    def test_without_data_graph_structural_only(self, workspace, capsys):
        code = main([
            "analyze", "--query", str(workspace / "broken.struql"),
        ])
        assert code == 0  # no vocabulary to check against

    def test_explicit_roots(self, workspace, capsys):
        (workspace / "rootless.struql").write_text(
            "where Publications(x)\ncreate Page(x)\n"
            'link Page(x) -> "Self" -> Page(x)\ncollect Pages(Page(x))'
        )
        args = [
            "analyze", "--query", str(workspace / "rootless.struql"),
            "--data", str(workspace / "data.ddl"),
        ]
        assert main(args) == 1  # SCH004: no root page type
        capsys.readouterr()
        assert main(args + ["--root", "Page()"]) == 0


class TestOutput:
    def test_json_format(self, workspace, capsys):
        code = main([
            "analyze", "--query", str(workspace / "broken.struql"),
            "--data", str(workspace / "data.ddl"), "--format", "json",
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert any(d["code"] == "SQ001" for d in payload["diagnostics"])

    def test_sarif_format(self, workspace, capsys):
        code = main([
            "analyze", "--query", str(workspace / "broken.struql"),
            "--data", str(workspace / "data.ddl"), "--format", "sarif",
        ])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-analyze"

    def test_output_file_with_summary_on_stderr(self, workspace, capsys):
        out = workspace / "report.sarif"
        code = main([
            "analyze", "--query", str(workspace / "broken.struql"),
            "--data", str(workspace / "data.ddl"),
            "--format", "sarif", "-o", str(out),
        ])
        assert code == 1
        assert json.loads(out.read_text())["version"] == "2.1.0"
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "error(s)" in captured.err

    def test_suppress_silences_findings(self, workspace, capsys):
        code = main([
            "analyze", "--query", str(workspace / "broken.struql"),
            "--data", str(workspace / "data.ddl"),
            "--suppress", "SQ001", "--suppress", "SCH001",
            "--suppress", "SCH002", "--suppress", "SCH003",
        ])
        assert code == 0
        assert "suppressed" in capsys.readouterr().out


class TestBuildGate:
    def _build(self, workspace, query, *extra):
        out_dir = workspace / "out"
        return main([
            "build", "--data", str(workspace / "data.ddl"),
            "--query", str(workspace / query),
            "--templates", str(workspace / "templates"),
            "-o", str(out_dir), *extra,
        ])

    def test_gate_passes_clean_build(self, workspace):
        assert self._build(workspace, "site.struql", "--analyze") == 0
        assert (workspace / "out" / "index.html").exists()

    def test_gate_blocks_broken_build(self, workspace, capsys):
        code = self._build(workspace, "broken.struql", "--analyze")
        assert code == 1
        captured = capsys.readouterr()
        assert "SQ001" in captured.err
        assert not (workspace / "out").exists()

    def test_ungated_build_still_materializes(self, workspace):
        # without --analyze the site builds; the post-build audit still
        # notices the resulting empty page and reports it via exit code
        code = self._build(workspace, "broken.struql")
        assert code == 1
        assert (workspace / "out" / "index.html").exists()

    def test_gated_build_checks_constraints(self, workspace, capsys):
        code = self._build(
            workspace, "site.struql", "--analyze", "--constraint",
            'forall X (Page(X) => exists Y (Page(Y) and Y -> "Next" -> X))',
        )
        assert code == 1
        assert "CON004" in capsys.readouterr().err
