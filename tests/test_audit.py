"""Unit tests for the site auditor (repro.core.audit) and the template
COUNT directive added alongside it."""

import pytest

from repro.core import SiteBuilder, SiteDefinition
from repro.core.audit import audit
from repro.graph import Graph, Oid, string
from repro.template import Renderer, TemplateSet, parse_template
from repro.workloads import HOMEPAGE_QUERY, bibliography_graph, homepage_templates


@pytest.fixture
def healthy():
    data = bibliography_graph(8, seed=100)
    builder = SiteBuilder(data)
    builder.define(
        SiteDefinition(
            "home", HOMEPAGE_QUERY, homepage_templates(), roots=["RootPage()"],
            constraints=[
                'forall X (YearPages(X) => exists Y (RootPage(Y) and Y -> "YearPage" -> X))'
            ],
        )
    )
    return builder.build("home")


class TestAudit:
    def test_healthy_site_is_ok(self, healthy):
        report = audit(healthy)
        assert report.ok, report.summary()
        assert report.pages == healthy.generated.page_count
        assert "OK" in report.summary()

    def test_unreachable_page_detected(self):
        data = Graph()
        item = data.add_node(Oid("i1"))
        data.add_edge(item, "name", string("x"))
        data.add_to_collection("Items", item)
        templates = TemplateSet()
        templates.add("root", "<h1>No links here</h1>")
        templates.add("page", "<SFMT name>")
        templates.for_object("Root()", "root")
        templates.for_collection("Pages", "page")
        builder = SiteBuilder(data)
        builder.define(
            SiteDefinition(
                "orphaned",
                # Page(x) is created and collected but never linked
                "create Root() where Items(x) create Page(x) collect Pages(Page(x))",
                templates,
                roots=["Root()"],
            )
        )
        report = audit(builder.build("orphaned"))
        assert not report.ok
        assert report.unreachable_pages == ["Page(i1)"]

    def test_empty_page_detected(self):
        data = Graph()
        item = data.add_node(Oid("i1"))
        data.add_edge(item, "name", string("x"))
        data.add_to_collection("Items", item)
        templates = TemplateSet()
        # typo: the attribute is "name", the template says "title"
        templates.add("root", "<h1><SFMT Item></h1>")
        templates.add("page", "<p><SFMT title></p>")
        templates.for_object("Root()", "root")
        templates.for_collection("Pages", "page")
        builder = SiteBuilder(data)
        builder.define(
            SiteDefinition(
                "typo",
                'create Root() where Items(x) create Page(x) '
                'link Root() -> "Item" -> Page(x) collect Pages(Page(x))',
                templates,
                roots=["Root()"],
            )
        )
        report = audit(builder.build("typo"))
        assert not report.ok
        assert len(report.empty_pages) == 1

    def test_failed_constraint_reported(self):
        data = bibliography_graph(8, seed=101, category_rate=0.3)
        builder = SiteBuilder(data)
        builder.define(
            SiteDefinition(
                "home", HOMEPAGE_QUERY, homepage_templates(),
                roots=["RootPage()"],
                constraints=[
                    "forall X (PaperPresentation(X) => "
                    "exists Y (CategoryPage(Y) and Y -> * -> X))"
                ],
            )
        )
        report = audit(builder.build("home"))
        assert not report.ok
        assert "0/1 hold" in report.summary()

    def test_audit_checks_constraints_when_build_skipped_them(self, healthy):
        healthy.constraint_results = {}
        report = audit(healthy)
        assert report.constraint_results  # recomputed from the definition


class TestCountDirective:
    def _page(self):
        graph = Graph()
        page = graph.add_node(Oid("P()"))
        for name in ("a", "b", "c"):
            graph.add_edge(page, "author", string(name))
        return graph, page

    def test_count_renders_cardinality(self):
        graph, page = self._page()
        out = Renderer(graph).render(parse_template("<SFMT author COUNT>"), page)
        assert out == "3"

    def test_count_of_missing_is_zero(self):
        graph, page = self._page()
        out = Renderer(graph).render(parse_template("<SFMT nothing COUNT>"), page)
        assert out == "0"

    def test_count_in_context(self):
        graph, page = self._page()
        template = parse_template("<SFMT author COUNT> authors: <SFMT author ENUM>")
        out = Renderer(graph).render(template, page)
        assert out == "3 authors: a, b, c"
