"""Unit tests for the Fig. 8 baselines and the relational-model encoding."""

import pytest

from repro.baselines import (
    dbtemplate_spec_lines,
    family_graph,
    graph_model,
    maximal_schema,
    procedural_source,
    procedural_spec_lines,
    run_dbtemplate,
    run_procedural,
    run_strudel,
    static_html_lines,
    strudel_query,
    strudel_spec_lines,
)
from repro.struql import parse
from repro.workloads import bibliography_graph


class TestFamilyEquivalence:
    @pytest.mark.parametrize("features", [1, 3])
    def test_all_technologies_emit_same_page_set(self, features):
        graph = family_graph(20, features=features, seed=0)
        strudel_pages = run_strudel(graph, features)
        procedural_pages = run_procedural(graph, features)
        dbtemplate_pages = run_dbtemplate(graph, features)
        assert sorted(procedural_pages) == sorted(dbtemplate_pages)
        # Strudel names pages from Skolem terms; compare counts + roots
        assert len(strudel_pages) == len(procedural_pages)
        assert "index.html" in strudel_pages

    def test_item_pages_have_content_everywhere(self):
        graph = family_graph(5, features=1, seed=1)
        for pages in (run_strudel(graph, 1), run_procedural(graph, 1),
                      run_dbtemplate(graph, 1)):
            item_pages = [p for name, p in pages.items() if "tem" in name.lower()]
            assert any("Item 0" in p for p in item_pages)

    def test_family_query_parses(self):
        for features in (0, 1, 5):
            program = parse(strudel_query(features))
            assert program.link_clause_count() == 1 + 3 * features


class TestSpecSizes:
    def test_spec_sizes_grow_with_complexity(self):
        for spec in (strudel_spec_lines, procedural_spec_lines, dbtemplate_spec_lines):
            assert spec(8) > spec(1)

    def test_strudel_scales_best_at_high_complexity(self):
        """The Fig. 8 claim: at complex structure, declarative wins."""
        features = 16
        strudel = strudel_spec_lines(features)
        assert strudel < procedural_spec_lines(features)

    def test_static_html_scales_with_data(self):
        small = run_strudel(family_graph(5, features=2, seed=0), 2)
        large = run_strudel(family_graph(50, features=2, seed=0), 2)
        assert static_html_lines(large) > static_html_lines(small) * 4

    def test_declarative_spec_independent_of_data_size(self):
        # Strudel's spec size depends only on structure, never on N
        assert strudel_spec_lines(4) == strudel_spec_lines(4)
        small_pages = run_strudel(family_graph(5, features=4, seed=0), 4)
        large_pages = run_strudel(family_graph(50, features=4, seed=0), 4)
        assert len(large_pages) > len(small_pages)

    def test_procedural_source_is_valid_python(self):
        compile(procedural_source(4), "<family>", "exec")


class TestRelationalModel:
    def test_null_fraction_reflects_irregularity(self):
        irregular = bibliography_graph(80, seed=0, month_rate=0.2, abstract_rate=0.3)
        regular = bibliography_graph(
            80, seed=0, month_rate=0.0, abstract_rate=1.0,
            postscript_rate=1.0, url_rate=1.0, category_rate=1.0,
        )
        irregular_report = maximal_schema(irregular, "Publications")
        regular_report = maximal_schema(regular, "Publications")
        assert irregular_report.null_fraction > regular_report.null_fraction

    def test_overflow_tables_for_multivalued(self):
        graph = bibliography_graph(30, seed=0)
        report = maximal_schema(graph, "Publications")
        assert "author" in report.overflow_tables

    def test_migrations_counted(self):
        graph = bibliography_graph(50, seed=0)
        report = maximal_schema(graph, "Publications")
        assert report.schema_migrations > 0
        assert report.initial_columns + report.schema_migrations == len(report.columns)

    def test_graph_model_has_no_overhead(self):
        graph = bibliography_graph(30, seed=0)
        report = graph_model(graph, "Publications")
        assert report.schema_migrations == 0
        assert report.objects == 30
        assert report.edges > 0

    def test_cells_accounting(self):
        graph = bibliography_graph(40, seed=1)
        report = maximal_schema(graph, "Publications")
        assert report.null_cells + report.filled_cells == report.total_cells

    def test_as_row_shapes(self):
        graph = bibliography_graph(10, seed=1)
        assert "null %" in maximal_schema(graph, "Publications").as_row()
        assert "migrations" in graph_model(graph, "Publications").as_row()

    def test_empty_collection(self):
        graph = bibliography_graph(10, seed=1)
        report = maximal_schema(graph, "Nothing")
        assert report.rows == 0 and report.null_fraction == 0.0
