"""Set-at-a-time (block) execution of STRUQL where-clauses.

The contracts under test:

* block mode and tuple-at-a-time mode produce *identical* binding
  relations -- same rows, same order -- for arbitrary graphs and a query
  suite covering collections, edges, arc variables, regular paths,
  negation, and comparisons (hypothesis property);
* the footprint recorded by block mode is sound: any delta that changes
  a query's bindings must satisfy ``footprint.touches(delta)``;
* edge cases where batching is easy to get wrong: zero-length path
  matches, cycles under ``Star``, negation over partially bound
  frontiers seeded through ``initial``;
* the path-reachability memo serves warm evaluations
  (``path_memo_hits``) and is invalidated by graph mutation;
* ``NFA.reversed()`` (structural reversal) is equivalent to compiling
  the reversed expression;
* ``_Frame.unique_dicts`` deduplicates in first-occurrence order at
  10k-row scale;
* ``adaptive=True`` may reorder rows but preserves the binding set;
* ``explain(..., counts=True)`` renders per-operator row counts.
"""

import pytest
from hypothesis import given, settings

from repro.graph import Graph, Oid, string
from repro.repository import IndexStatistics
from repro.struql import (
    Footprint,
    Metrics,
    PlanCache,
    QueryEngine,
    compile_path,
    explain,
    parse_query,
    query_bindings,
    reverse_expr,
    sources_to,
)
from repro.struql.ast import Alternation, Concat, LabelIs, Star, any_path
from repro.struql.eval import _Frame

from .test_perf_caches import _apply, mutation_scripts

# ---------------------------------------------------------------------- #
# block == row (property)

_BLOCK_QUERY_TEXTS = [
    'where C(x), x -> "a" -> y create Probe()',
    "where C(x), x -> l -> v create Probe()",
    'where C(x), not(x -> "b" -> y) create Probe()',
    "where C(x), x -> * -> v create Probe()",
    'where C(x), x -> "a"* -> v create Probe()',
    'where C(x), C(y), x -> "a" -> z, y -> "b" -> z create Probe()',
    'where C(x), x -> "a" -> v, v = "f" create Probe()',
    'where x -> "a" -> y, y -> ("a"|"b") -> z create Probe()',
]


def _bindings(graph, conditions, use_blocks, **kwargs):
    engine = QueryEngine(
        graph, use_blocks=use_blocks, plan_cache=PlanCache(), **kwargs
    )
    return engine.bindings(conditions)


@given(mutation_scripts())
@settings(max_examples=40, deadline=None)
def test_block_bindings_match_row_bindings(script):
    """Strict list equality: same rows in the same order, on arbitrary
    graphs, for every query shape the engine supports."""
    queries = [parse_query(text) for text in _BLOCK_QUERY_TEXTS]
    graph = Graph()
    nodes = []
    for step in script:
        _apply(graph, nodes, step)
    for query in queries:
        block = _bindings(graph, query.where, use_blocks=True)
        row = _bindings(graph, query.where, use_blocks=False)
        assert block == row, str(query)


@given(mutation_scripts())
@settings(max_examples=30, deadline=None)
def test_block_matches_row_in_naive_mode(script):
    """The equivalence holds with indexes disabled too (full scans)."""
    queries = [parse_query(text) for text in _BLOCK_QUERY_TEXTS]
    graph = Graph()
    nodes = []
    for step in script:
        _apply(graph, nodes, step)
    for query in queries:
        block = _bindings(graph, query.where, use_blocks=True, use_indexes=False)
        row = _bindings(graph, query.where, use_blocks=False, use_indexes=False)
        assert block == row, str(query)


# ---------------------------------------------------------------------- #
# footprint soundness: touches(delta) covers every read

_FOOTPRINT_QUERY_TEXTS = [
    'where C(x), x -> "a" -> y create Probe()',
    'where C(x), x -> "a"* -> v create Probe()',
    'where C(x), not(x -> "b" -> y) create Probe()',
]


@given(mutation_scripts())
@settings(max_examples=30, deadline=None)
def test_block_footprint_sound_under_deltas(script):
    """If a mutation changes a query's bindings, the footprint recorded
    by the *previous* block-mode evaluation must admit it (touches)."""
    queries = [parse_query(text) for text in _FOOTPRINT_QUERY_TEXTS]
    graph = Graph()
    nodes = []
    engine = QueryEngine(graph, plan_cache=PlanCache())
    cached = {}
    for index, query in enumerate(queries):
        footprint = Footprint()
        with engine.record_into(footprint):
            rows = engine.bindings(query.where)
        cached[index] = (rows, footprint, graph.epoch)
    for step in script:
        _apply(graph, nodes, step)
        for index, query in enumerate(queries):
            rows, footprint, epoch = cached[index]
            delta = graph.delta_since(epoch)
            assert delta is not None  # short scripts never truncate
            fresh_footprint = Footprint()
            with engine.record_into(fresh_footprint):
                fresh = engine.bindings(query.where)
            if fresh != rows:
                assert footprint.touches(delta), str(query)
            cached[index] = (fresh, fresh_footprint, graph.epoch)


# ---------------------------------------------------------------------- #
# edge cases

@pytest.fixture
def cycle_graph():
    """a -n-> b -n-> a, both in C; a -a-> "leaf"."""
    graph = Graph()
    a, b = graph.add_node(), graph.add_node()
    graph.add_edge(a, "n", b)
    graph.add_edge(b, "n", a)
    graph.add_edge(a, "a", string("leaf"))
    graph.add_to_collection("C", a)
    graph.add_to_collection("C", b)
    return graph, a, b


def test_star_includes_zero_length_match(cycle_graph):
    graph, a, b = cycle_graph
    query = parse_query("where C(x), x -> * -> v create Probe()")
    block = _bindings(graph, query.where, use_blocks=True)
    row = _bindings(graph, query.where, use_blocks=False)
    assert block == row
    # "including p itself": every collection member reaches itself
    assert {"x": a, "v": a} in block
    assert {"x": b, "v": b} in block


def test_star_terminates_on_cycles(cycle_graph):
    graph, a, b = cycle_graph
    query = parse_query('where C(x), x -> "n"* -> v create Probe()')
    block = _bindings(graph, query.where, use_blocks=True)
    row = _bindings(graph, query.where, use_blocks=False)
    assert block == row
    assert {"x": a, "v": b} in block and {"x": b, "v": a} in block


def test_fully_bound_path_pairs(cycle_graph):
    """Both endpoints bound: the block operator verdict-checks pairs."""
    graph, a, b = cycle_graph
    query = parse_query('where C(x), C(v), x -> "n" -> v create Probe()')
    block = _bindings(graph, query.where, use_blocks=True)
    row = _bindings(graph, query.where, use_blocks=False)
    assert block == row
    assert {"x": a, "v": b} in block


def test_negation_over_partially_bound_frontier(cycle_graph):
    """Seeded rows where the negation variable is pre-bound: the block
    negation must evaluate per distinct projection, not per row."""
    graph, a, b = cycle_graph
    query = parse_query('where not(x -> "a" -> y) create Probe()')
    initial = [{"x": a}, {"x": b}, {"x": a}]
    block_engine = QueryEngine(graph, use_blocks=True, plan_cache=PlanCache())
    row_engine = QueryEngine(graph, use_blocks=False, plan_cache=PlanCache())
    block = block_engine.bindings(query.where, initial=initial)
    row = row_engine.bindings(query.where, initial=initial)
    assert block == row
    assert block == [{"x": b}]  # a has an "a"-edge, b does not


def test_path_over_partially_bound_frontier(cycle_graph):
    """Mixed frontier: some rows bind only the source, some bind both
    endpoints -- each row classifies into a different seed group."""
    graph, a, b = cycle_graph
    query = parse_query('where x -> "n"* -> v create Probe()')
    initial = [{"x": a}, {"x": b, "v": a}, {"v": b}]
    block_engine = QueryEngine(graph, use_blocks=True, plan_cache=PlanCache())
    row_engine = QueryEngine(graph, use_blocks=False, plan_cache=PlanCache())
    assert block_engine.bindings(query.where, initial=initial) == \
        row_engine.bindings(query.where, initial=initial)


# ---------------------------------------------------------------------- #
# hash-join probing and the path memo

def _fanin_graph(members=20):
    """Many collection members sharing one hub: rows collapse to a
    handful of distinct keys, so block mode probes far fewer times."""
    graph = Graph()
    hub = graph.add_node(hint="hub")
    for index in range(members):
        node = graph.add_node(hint=f"m{index}")
        graph.add_edge(node, "to", hub)
        graph.add_edge(node, "kind", string(f"k{index % 2}"))
        graph.add_to_collection("C", node)
    graph.add_edge(hub, "name", string("hub"))
    return graph


def test_block_mode_counts_dedup_and_probes():
    graph = _fanin_graph()
    query = parse_query('where C(x), x -> "to" -> h, h -> "name" -> n create Probe()')
    # written order pinned: the name-probe runs over 20 rows that all
    # bind h to the same hub, so 19 of its probes dedup away
    engine = QueryEngine(graph, optimize=False, plan_cache=PlanCache())
    rows = engine.bindings(query.where)
    assert len(rows) == 20
    assert engine.metrics.dedup_hits == 19
    assert engine.metrics.hash_join_probes > 0
    assert len(engine.last_operator_stats) == 3  # one per condition
    name_op = engine.last_operator_stats[2]
    assert name_op.rows_in == 20 and name_op.probes == 1
    assert name_op.dedup_hits == 19
    total_in = engine.last_operator_stats[0].rows_in
    assert total_in == 1  # the pipeline starts from the empty row


def test_path_memo_serves_warm_runs_and_invalidates():
    graph = _fanin_graph()
    query = parse_query("where C(x), x -> * -> v create Probe()")
    cache = PlanCache()
    engine = QueryEngine(graph, plan_cache=cache)

    cold = engine.bindings(query.where)
    assert engine.metrics.path_memo_misses > 0
    hits_after_cold = engine.metrics.path_memo_hits

    warm = engine.bindings(query.where)
    assert warm == cold
    assert engine.metrics.path_memo_hits > hits_after_cold  # memo reuse
    assert cache.stats()["path_entries"] > 0

    # mutation bumps the epoch: the memo must not serve stale sets
    extra = graph.add_node(hint="new")
    graph.add_edge(sorted(graph.collection("C"), key=lambda o: o.name)[0],
                   "to", extra)
    fresh = engine.bindings(query.where)
    assert fresh != cold
    assert fresh == _bindings(graph, query.where, use_blocks=False)


def test_path_memo_shared_across_queries_with_same_nfa():
    """Two queries sharing a compiled NFA (identical conditions resolve
    to the same cached NFA object) reuse each other's reachability."""
    graph = _fanin_graph(members=6)
    query = parse_query("where C(x), x -> * -> v create Probe()")
    cache = PlanCache()
    first = QueryEngine(graph, plan_cache=cache)
    second = QueryEngine(graph, plan_cache=cache)
    first.bindings(query.where)
    second.bindings(query.where)
    assert second.metrics.path_memo_hits > 0


# ---------------------------------------------------------------------- #
# structural NFA reversal

_REVERSAL_EXPRS = [
    LabelIs("x"),
    Concat((LabelIs("x"), LabelIs("y"))),
    Alternation((LabelIs("x"), Concat((LabelIs("y"), LabelIs("x"))))),
    Star(Concat((LabelIs("x"), LabelIs("y")))),
    any_path(),
]


@pytest.mark.parametrize("expr", _REVERSAL_EXPRS, ids=repr)
def test_nfa_reversed_matches_reverse_expr(expr):
    graph = Graph()
    a, b, c, d = (graph.add_node() for _ in range(4))
    graph.add_edge(a, "x", b)
    graph.add_edge(b, "y", d)
    graph.add_edge(a, "y", c)
    graph.add_edge(c, "x", d)
    structural = compile_path(expr).reversed()
    recompiled = compile_path(reverse_expr(expr))
    for target in (a, b, c, d):
        assert sources_to(graph, structural, target) == \
            sources_to(graph, recompiled, target)


def test_nfa_reversed_is_cached():
    nfa = compile_path(Concat((LabelIs("x"), LabelIs("y"))))
    assert nfa.reversed() is nfa.reversed()


# ---------------------------------------------------------------------- #
# unique_dicts at scale

def test_unique_dicts_dedupes_first_occurrence_order_at_10k_rows():
    frame = _Frame(["x", "y"])
    rows = [(index % 100, (index * 7) % 100) for index in range(10_000)]
    result = frame.unique_dicts(rows)
    # reference: classic seen-set loop
    seen, expected = set(), []
    for row in rows:
        if row not in seen:
            seen.add(row)
            expected.append(frame.to_dict(row))
    assert result == expected
    assert len(result) == len({tuple(sorted(d.items())) for d in result})


# ---------------------------------------------------------------------- #
# adaptive mode: same set, order may differ

def test_adaptive_engine_preserves_binding_set():
    graph = _fanin_graph()
    query = parse_query(
        'where C(x), x -> "to" -> h, x -> "kind" -> k create Probe()'
    )
    adaptive = QueryEngine(graph, adaptive=True, plan_cache=PlanCache())
    first = adaptive.bindings(query.where)   # learns dedup factors
    second = adaptive.bindings(query.where)  # may replan with them
    baseline = _bindings(graph, query.where, use_blocks=False)

    def canon(rows):
        return sorted(tuple(sorted((k, repr(v)) for k, v in row.items()))
                      for row in rows)

    assert canon(first) == canon(baseline)
    assert canon(second) == canon(baseline)
    assert adaptive.dedup_factors  # factors were learned


def test_non_adaptive_engine_replans_nothing_from_factors():
    """Learned factors must not change the plan key when adaptive is
    off: the second evaluation is a plan-cache hit."""
    graph = _fanin_graph()
    query = parse_query('where C(x), x -> "to" -> h create Probe()')
    engine = QueryEngine(graph, plan_cache=PlanCache())
    engine.bindings(query.where)
    engine.bindings(query.where)
    assert engine.metrics.plan_cache_hits == 1
    assert engine.metrics.plan_cache_misses == 1


# ---------------------------------------------------------------------- #
# evaluate()/query_bindings() ablation plumbing and explain counts

def test_query_bindings_use_blocks_flag_matches():
    graph = _fanin_graph(members=5)
    text = 'where C(x), x -> "to" -> h create Probe()'
    assert query_bindings(text, graph, use_blocks=True) == \
        query_bindings(text, graph, use_blocks=False)


def test_explain_counts_renders_operator_rows():
    graph = _fanin_graph(members=5)
    text = 'where C(x), x -> "to" -> h, h -> "name" -> n create Probe()'
    plan = explain(text, graph, counts=True)
    assert "rows in" in plan and "rows out" in plan
    assert "collection scan C" in plan
    # the collection scan emits one row per member
    scan_line = next(line for line in plan.splitlines() if "collection scan" in line)
    assert " 5 " in scan_line


def test_explain_counts_requires_graph():
    with pytest.raises(ValueError):
        explain('where C(x) create Probe()', counts=True)


def test_stats_snapshot_direction_choice_is_consistent():
    """Fully-bound pairs answered under either direction choice agree
    with row mode (the optimizer picks by cardinality estimates)."""
    graph = _fanin_graph()
    stats = IndexStatistics.from_graph(graph)
    query = parse_query('where C(x), C(y), x -> "to"* -> y create Probe()')
    block = QueryEngine(graph, stats=stats, plan_cache=PlanCache()).bindings(
        query.where
    )
    row = _bindings(graph, query.where, use_blocks=False)
    assert block == row


def test_arc_variable_block_matches_row():
    graph = _fanin_graph(members=4)
    query = parse_query("where C(x), x -> l -> v create Probe()")
    assert _bindings(graph, query.where, use_blocks=True) == \
        _bindings(graph, query.where, use_blocks=False)


def test_oid_bound_arc_variable_yields_nothing():
    """Row mode skips rows whose arc variable is bound to an Oid; block
    mode must replicate that quirk."""
    graph, a, b = Graph(), None, None
    a = graph.add_node()
    b = graph.add_node()
    graph.add_edge(a, "n", b)
    query = parse_query("where x -> l -> v create Probe()")
    initial = [{"x": a, "l": a}]
    block = QueryEngine(graph, use_blocks=True, plan_cache=PlanCache())
    row = QueryEngine(graph, use_blocks=False, plan_cache=PlanCache())
    assert block.bindings(query.where, initial=initial) == \
        row.bindings(query.where, initial=initial) == []
