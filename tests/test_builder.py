"""Unit tests for the fluent query builder (repro.struql.builder)."""

import pytest

from repro.errors import StruqlSemanticError
from repro.graph import Oid
from repro.struql import (
    ProgramBuilder,
    alt,
    arc,
    const,
    evaluate,
    label,
    parse,
    seq,
    skolem,
    star,
    var,
)
from repro.struql.ast import (
    CollectionCond,
    ComparisonCond,
    Const,
    EdgeCond,
    NotCond,
    PathCond,
    SkolemTerm,
    Var,
)
from repro.workloads import bibliography_graph


class TestTermHelpers:
    def test_var(self):
        assert var("x") == Var("x")

    def test_const_wraps_python_values(self):
        assert const(1998).atom.value == 1998
        assert const("web").atom.value == "web"

    def test_skolem(self):
        term = skolem("YearPage", "y", 1998)
        assert term == SkolemTerm("YearPage", (Var("y"), const(1998)))

    def test_skolem_simple(self):
        assert skolem("Root") == SkolemTerm("Root", ())


class TestPathHelpers:
    def test_star_default_is_any_path(self):
        from repro.struql.ast import AnyLabel, Star

        assert star() == Star(AnyLabel())

    def test_seq_and_alt(self):
        from repro.struql.ast import Alternation, Concat, LabelIs

        assert seq("a", "b") == Concat((LabelIs("a"), LabelIs("b")))
        assert alt("a", "b") == Alternation((LabelIs("a"), LabelIs("b")))

    def test_star_of_label(self):
        from repro.struql.ast import LabelIs, Star

        assert star("next") == Star(LabelIs("next"))


class TestBuilding:
    def _homepage(self):
        b = ProgramBuilder()
        q = (
            b.query()
            .collection("Publications", "x")
            .edge("x", arc("l"), "v")
            .create(skolem("PaperPage", "x"))
            .link(skolem("PaperPage", "x"), arc("l"), "v")
            .collect("PaperPages", skolem("PaperPage", "x"))
        )
        (
            q.block()
            .edge("x", "year", "y")
            .create(skolem("YearPage", "y"))
            .link(skolem("YearPage", "y"), "Paper", skolem("PaperPage", "x"))
            .link(skolem("YearPage", "y"), "Year", "y")
            .collect("YearPages", skolem("YearPage", "y"))
        )
        return b

    def test_condition_types(self):
        b = ProgramBuilder()
        q = (
            b.query()
            .collection("C", "x")
            .edge("x", "a", "y")
            .path("x", star(), "z")
            .compare("y", "=", const(1998))
            .predicate("isImageFile", "z")
            .create(skolem("P", "x"))
        )
        query = b.build().queries[0]
        kinds = [type(c).__name__ for c in query.where]
        assert kinds == [
            "CollectionCond", "EdgeCond", "PathCond", "ComparisonCond",
            "PredicateCond",
        ]

    def test_negate(self):
        inner = ProgramBuilder().query().edge("x", "journal", "j")
        b = ProgramBuilder()
        b.query().collection("Pubs", "x").negate(*inner.conditions()).create(
            skolem("P", "x")
        )
        query = b.build().queries[0]
        assert isinstance(query.where[1], NotCond)

    def test_bad_operator(self):
        with pytest.raises(StruqlSemanticError):
            ProgramBuilder().query().compare("a", "~", "b")

    def test_unbound_variable_caught_at_build(self):
        b = ProgramBuilder()
        b.query().collection("C", "x").create(skolem("P", "zzz"))
        with pytest.raises(StruqlSemanticError):
            b.build()

    def test_blocks_named_depth_first(self):
        b = self._homepage()
        program = b.build()
        assert program.queries[0].name == "Q1"
        assert program.queries[0].blocks[0].name == "Q2"

    def test_text_round_trips_through_parser(self):
        b = self._homepage()
        text = b.text()
        reparsed = parse(text)
        built = b.build()
        assert reparsed.queries[0].where == built.queries[0].where
        assert reparsed.queries[0].blocks[0].link == built.queries[0].blocks[0].link

    def test_built_program_evaluates_like_parsed(self):
        data = bibliography_graph(8, seed=80)
        built_graph = evaluate(self._homepage().build(), data)
        parsed_graph = evaluate(parse(self._homepage().text()), data)
        assert built_graph.stats() == parsed_graph.stats()
        assert built_graph.has_node(Oid("YearPage(1998)")) == parsed_graph.has_node(
            Oid("YearPage(1998)")
        )

    def test_multiple_queries(self):
        b = ProgramBuilder()
        b.query().create(skolem("Root"))
        b.query().collection("C", "x").create(skolem("P", "x")).link(
            skolem("Root"), "p", skolem("P", "x")
        )
        program = b.build()
        assert len(program.queries) == 2
        assert program.skolem_functions() == ["Root", "P"]

    def test_link_constant_target(self):
        b = ProgramBuilder()
        b.query().collection("C", "x").create(skolem("P", "x")).link(
            skolem("P", "x"), "kind", const("page")
        )
        link = b.build().queries[0].link[0]
        assert isinstance(link.target, Const)

    def test_source_text_populated(self):
        program = self._homepage().build()
        assert program.line_count() > 0
