"""Property-based test: builder-generated programs round-trip through the
concrete syntax.

Random programs assembled with the fluent builder must (a) validate,
(b) pretty-print to parseable STRUQL, and (c) parse back to the same
clauses.  This pins down the builder/format_query/parser triangle.
"""

import string as stringmod

from hypothesis import given, settings, strategies as st

from repro.struql import ProgramBuilder, arc, const, parse, skolem, star

_names = st.sampled_from(["Pubs", "Items", "People"])
_labels = st.sampled_from(["year", "title", "group", "kind"])
_variables = st.sampled_from(["x", "y", "z"])
_function_names = st.sampled_from(["Page", "Section", "Entry"])


@st.composite
def built_programs(draw):
    builder = ProgramBuilder()
    query = builder.query()
    base_var = draw(_variables)
    query.collection(draw(_names), base_var)
    function = draw(_function_names)
    bound = {base_var}
    # a few where conditions
    for index in range(draw(st.integers(0, 3))):
        kind = draw(st.integers(0, 3))
        target = f"v{index}"
        if kind == 0:
            query.edge(base_var, draw(_labels), target)
            bound.add(target)
        elif kind == 1:
            query.edge(base_var, arc(f"l{index}"), target)
            bound.add(target)
            bound.add(f"l{index}")
        elif kind == 2:
            query.path(base_var, star(), target)
            bound.add(target)
        else:
            query.edge(base_var, draw(_labels), target)
            bound.add(target)
            query.compare(target, draw(st.sampled_from(["=", "!="])),
                          const(draw(st.integers(0, 5))))
    query.create(skolem(function, base_var))
    query.link(skolem(function, base_var), draw(_labels),
               draw(st.sampled_from(sorted(bound))))
    query.collect("Out", skolem(function, base_var))
    if draw(st.booleans()):
        child = query.block()
        child_label = draw(_labels)
        child.edge(base_var, child_label, "w")
        child.create(skolem("Sub", "w"))
        child.link(skolem("Sub", "w"), "parent", skolem(function, base_var))
    return builder


@given(built_programs())
@settings(max_examples=40, deadline=None)
def test_builder_text_round_trips(builder):
    program = builder.build()
    reparsed = parse(builder.text())
    assert len(reparsed.queries) == len(program.queries)
    for built_query, parsed_query in zip(program.queries, reparsed.queries):
        assert built_query.where == parsed_query.where
        assert built_query.create == parsed_query.create
        assert built_query.link == parsed_query.link
        assert built_query.collect == parsed_query.collect
        assert len(built_query.blocks) == len(parsed_query.blocks)
        for built_block, parsed_block in zip(built_query.blocks, parsed_query.blocks):
            assert built_block.where == parsed_block.where
            assert built_block.link == parsed_block.link


@given(built_programs())
@settings(max_examples=20, deadline=None)
def test_built_programs_evaluate(builder):
    """Every random built program must evaluate without error on a graph
    containing the referenced collections."""
    from repro.graph import Graph, string
    from repro.struql import evaluate

    graph = Graph()
    for collection in ("Pubs", "Items", "People"):
        for index in range(2):
            oid = graph.add_node()
            graph.add_edge(oid, "year", string(str(1990 + index)))
            graph.add_edge(oid, "title", string(f"t{index}"))
            graph.add_to_collection(collection, oid)
    result = evaluate(builder.build(), graph)
    assert result.node_count >= 0  # no exceptions is the property
