"""Unit tests for the command-line interface (repro.cli)."""

import os

import pytest

from repro.cli import main

BIBTEX = """
@article{p1, title = {Alpha}, author = {Mary and Dan}, year = 1998, category = {web}}
@article{p2, title = {Beta}, author = {Dan}, year = 1997}
"""

SITE_QUERY = """
create Root()
where Publications(x), x -> l -> v
create Page(x)
link Page(x) -> l -> v, Root() -> "Paper" -> Page(x)
collect Pages(Page(x))
"""

ROOT_TEMPLATE = '<h1>Papers</h1><SFMT Paper UL ORDER=descend KEY=year>\n'
PAGE_TEMPLATE = '<h2><SFMT title></h2> by <SFMT author ENUM> (<SFMT year>)\n'


@pytest.fixture
def workspace(tmp_path):
    bib = tmp_path / "pubs.bib"
    bib.write_text(BIBTEX)
    query = tmp_path / "site.struql"
    query.write_text(SITE_QUERY)
    templates = tmp_path / "templates"
    templates.mkdir()
    (templates / "Root__.tmpl").write_text(ROOT_TEMPLATE)
    (templates / "Pages.tmpl").write_text(PAGE_TEMPLATE)
    return tmp_path


def _wrap(workspace):
    data = workspace / "data.ddl"
    code = main(["wrap", "bibtex", str(workspace / "pubs.bib"), "-o", str(data)])
    assert code == 0
    return data


class TestWrap:
    def test_bibtex(self, workspace):
        data = _wrap(workspace)
        text = data.read_text()
        assert "object p1" in text
        assert "member Publications" in text

    def test_csv(self, workspace, capsys):
        csv = workspace / "t.csv"
        csv.write_text("a,b\n1,x\n")
        assert main(["wrap", "csv", str(csv)]) == 0
        out = capsys.readouterr().out
        assert "collection t" in out

    def test_structured(self, workspace, capsys):
        rec = workspace / "r.txt"
        rec.write_text("%collection R\n\nname: one\n")
        assert main(["wrap", "structured", str(rec)]) == 0
        assert "member R" in capsys.readouterr().out

    def test_html_directory(self, workspace, capsys):
        site = workspace / "html"
        site.mkdir()
        (site / "a.html").write_text("<html><title>A</title></html>")
        assert main(["wrap", "html", str(site)]) == 0
        assert "page:a.html" in capsys.readouterr().out

    def test_ddl_passthrough(self, workspace, capsys):
        ddl_file = workspace / "x.ddl"
        ddl_file.write_text('object a { name: "n" }')
        assert main(["wrap", "ddl", str(ddl_file)]) == 0
        assert "object a" in capsys.readouterr().out


class TestBuild:
    def test_build_site(self, workspace):
        data = _wrap(workspace)
        out_dir = workspace / "out"
        code = main([
            "build", "--data", str(data), "--query",
            str(workspace / "site.struql"), "--templates",
            str(workspace / "templates"), "-o", str(out_dir),
            "--root", "Root()",
        ])
        assert code == 0
        assert (out_dir / "index.html").exists()
        index = (out_dir / "index.html").read_text()
        assert "Alpha" in index and "Beta" in index

    def test_default_roots(self, workspace):
        data = _wrap(workspace)
        out_dir = workspace / "out2"
        code = main([
            "build", "--data", str(data), "--query",
            str(workspace / "site.struql"), "--templates",
            str(workspace / "templates"), "-o", str(out_dir),
        ])
        assert code == 0


class TestSchema:
    def test_dot_output(self, workspace, capsys):
        assert main(["schema", str(workspace / "site.struql")]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert '"Root" -> "Page"' in out

    def test_text_output(self, workspace, capsys):
        assert main(
            ["schema", str(workspace / "site.struql"), "--format", "text"]
        ) == 0
        assert 'Root() -> "Paper" -> Page(x)' in capsys.readouterr().out


class TestCheckAndQuery:
    def test_check_holds(self, workspace):
        data = _wrap(workspace)
        code = main(["check", "--site", str(data), "exists X (Publications(X))"])
        assert code == 0

    def test_check_violation_exit_code(self, workspace):
        data = _wrap(workspace)
        code = main(["check", "--site", str(data), "exists X (Nothing(X))"])
        assert code == 1

    def test_static_verification(self, workspace, capsys):
        code = main([
            "check", "--query", str(workspace / "site.struql"),
            'forall X (Page(X) => exists Y (Root(Y) and Y -> "Paper" -> X))',
        ])
        assert code == 0
        assert "static verified" in capsys.readouterr().out

    def test_bindings(self, workspace, capsys):
        data = _wrap(workspace)
        code = main([
            "bindings", "--data", str(data),
            'where Publications(x), x -> "year" -> y',
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "x=p1" in out and "y=1998" in out

    def test_stats(self, workspace, capsys):
        data = _wrap(workspace)
        assert main(["stats", str(data)]) == 0
        out = capsys.readouterr().out
        assert "nodes: 2" in out
        assert "collection Publications: 2" in out

    def test_dot(self, workspace, capsys):
        data = _wrap(workspace)
        assert main(["dot", str(data)]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_dot_clustered(self, workspace, capsys):
        data = _wrap(workspace)
        assert main(["dot", str(data), "--cluster"]) == 0
        assert "subgraph cluster_0" in capsys.readouterr().out


class TestLintAndExplain:
    def test_lint_clean(self, workspace):
        code = main([
            "lint", "--query", str(workspace / "site.struql"),
            "--templates", str(workspace / "templates"),
        ])
        assert code == 0

    def test_lint_catches_typo(self, workspace, capsys):
        (workspace / "templates" / "Root__.tmpl").write_text("<SFMT Paperr UL>")
        code = main([
            "lint", "--query", str(workspace / "site.struql"),
            "--templates", str(workspace / "templates"),
        ])
        assert code == 1
        assert "Paperr" in capsys.readouterr().out

    def test_explain_inline_query(self, workspace, capsys):
        data = _wrap(workspace)
        code = main([
            "explain", 'where Publications(x), x -> "year" -> y',
            "--data", str(data),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "plan for:" in out
        assert "collection scan Publications" in out

    def test_explain_naive_mode(self, workspace, capsys):
        data = _wrap(workspace)
        code = main([
            "explain", 'where Publications(x), x -> "year" -> y',
            "--data", str(data), "--naive",
        ])
        assert code == 0
        assert "FULL SCAN" in capsys.readouterr().out

    def test_explain_from_file(self, workspace, capsys):
        code = main(["explain", str(workspace / "site.struql")])
        assert code == 0
        assert "plan for:" in capsys.readouterr().out
