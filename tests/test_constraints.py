"""Unit tests for integrity constraints (repro.core.constraints)."""

import pytest

from repro.core import (
    And,
    ClassAtom,
    Exists,
    ForAll,
    Implies,
    Not,
    Or,
    PathAtom,
    SiteSchema,
    Verdict,
    check,
    enforce,
    parse_constraint,
    verify_static,
)
from repro.errors import ConstraintError, ConstraintViolation
from repro.graph import Graph, Oid, string
from repro.struql import evaluate, parse
from repro.workloads import HOMEPAGE_QUERY, bibliography_graph


class TestParser:
    def test_forall_implies_exists(self):
        formula = parse_constraint(
            'forall X (A(X) => exists Y (B(Y) and Y -> "p" -> X))'
        )
        assert isinstance(formula, ForAll)
        assert isinstance(formula.body, Implies)
        assert isinstance(formula.body.right, Exists)

    def test_implies_keyword(self):
        formula = parse_constraint("forall X (A(X) implies B(X))")
        assert isinstance(formula.body, Implies)

    def test_star_path(self):
        formula = parse_constraint("forall X (A(X) => exists Y (B(Y) and Y -> * -> X))")
        atom = formula.body.right.body.right
        assert isinstance(atom, PathAtom)

    def test_and_or_not(self):
        formula = parse_constraint("forall X (not A(X) or (B(X) and C(X)))")
        assert isinstance(formula.body, Or)
        assert isinstance(formula.body.left, Not)
        assert isinstance(formula.body.right, And)

    def test_complex_path(self):
        formula = parse_constraint('forall X (A(X) => X -> "a"."b"* -> X)')
        assert isinstance(formula.body.right, PathAtom)

    def test_trailing_garbage(self):
        with pytest.raises(ConstraintError):
            parse_constraint("forall X (A(X)) banana")

    def test_unterminated(self):
        with pytest.raises(ConstraintError):
            parse_constraint("forall X (A(X)")

    def test_str_round_trip(self):
        text = 'forall X (A(X) => exists Y (B(Y) and Y -> "p" -> X))'
        formula = parse_constraint(text)
        assert parse_constraint(str(formula)) is not None


@pytest.fixture
def tiny_site():
    graph = Graph()
    root = graph.add_node(Oid("Root()"))
    good = graph.add_node(Oid("Page(1)"))
    orphan = graph.add_node(Oid("Page(2)"))
    graph.add_edge(root, "child", good)
    graph.add_to_collection("Roots", root)
    graph.add_to_collection("Pages", good)
    graph.add_to_collection("Pages", orphan)
    return graph


class TestModelChecking:
    def test_satisfied(self, tiny_site):
        result = check(
            'forall X (Roots(X) => X -> "child" -> X) '
            .replace('X -> "child" -> X', 'exists Y (Pages(Y) and X -> "child" -> Y)'),
            tiny_site,
        )
        assert result.holds

    def test_violated_with_witness(self, tiny_site):
        result = check(
            "forall X (Pages(X) => exists Y (Roots(Y) and Y -> * -> X))",
            tiny_site,
        )
        assert not result.holds
        assert result.witness["X"] == Oid("Page(2)")

    def test_skolem_function_as_class(self, tiny_site):
        # no "Page" collection: falls back to Skolem-term prefix matching
        result = check(
            "forall X (Page(X) => exists Y (Root(Y) and Y -> * -> X))", tiny_site
        )
        assert not result.holds

    def test_negation(self, tiny_site):
        assert check("forall X (not Nothing(X))", tiny_site).holds

    def test_exists(self, tiny_site):
        assert check("exists X (Roots(X))", tiny_site).holds
        assert not check("exists X (Nothing(X))", tiny_site).holds

    def test_path_atom_source_only(self, tiny_site):
        assert check('forall X (Roots(X) => X -> "child" -> Y)', tiny_site).holds

    def test_unbound_class_var_raises(self, tiny_site):
        with pytest.raises(ConstraintError):
            check("forall X (A(Y))", tiny_site)

    def test_enforce_passes(self, tiny_site):
        enforce(["exists X (Roots(X))"], tiny_site)

    def test_enforce_raises_with_witness(self, tiny_site):
        with pytest.raises(ConstraintViolation):
            enforce(
                ["forall X (Pages(X) => exists Y (Roots(Y) and Y -> * -> X))"],
                tiny_site,
            )


@pytest.fixture
def homepage():
    data = bibliography_graph(15, seed=4)
    program = parse(HOMEPAGE_QUERY)
    return SiteSchema.from_program(program), evaluate(program, data)


class TestStaticVerification:
    def test_provable_constraint_verified(self, homepage):
        schema, site = homepage
        constraint = (
            'forall X (AbstractPage(X) => '
            'exists Y (AbstractsPage(Y) and Y -> "Abstract" -> X))'
        )
        assert verify_static(constraint, schema) is Verdict.VERIFIED
        assert check(constraint, site).holds  # soundness witnessed

    def test_same_block_guard_verified(self, homepage):
        schema, site = homepage
        constraint = (
            'forall X (YearPage(X) => '
            'exists Y (RootPage(Y) and Y -> "YearPage" -> X))'
        )
        assert verify_static(constraint, schema) is Verdict.VERIFIED
        assert check(constraint, site).holds

    def test_actually_false_constraint_not_verified(self, homepage):
        schema, site = homepage
        # not every publication has a category, so this can fail
        constraint = (
            "forall X (PaperPresentation(X) => "
            "exists Y (CategoryPage(Y) and Y -> * -> X))"
        )
        assert verify_static(constraint, schema) is Verdict.UNKNOWN

    def test_star_path_verified_through_chain(self, homepage):
        schema, site = homepage
        # RootPage -*-> AbstractPage via AbstractsPage, all guarded by Q2 max
        constraint = (
            "forall X (AbstractPage(X) => exists Y (RootPage(Y) and Y -> * -> X))"
        )
        assert verify_static(constraint, schema) is Verdict.VERIFIED
        assert check(constraint, site).holds

    def test_unsupported_shape_is_unknown(self, homepage):
        schema, _ = homepage
        assert verify_static("exists X (RootPage(X))", schema) is Verdict.UNKNOWN

    def test_unknown_class_is_unknown(self, homepage):
        schema, _ = homepage
        constraint = "forall X (Widget(X) => exists Y (RootPage(Y) and Y -> * -> X))"
        assert verify_static(constraint, schema) is Verdict.UNKNOWN

    def test_forward_direction_verified(self, homepage):
        """The X -R-> Y variant: every presentation links to its abstract
        page (same-block edge, so the guard inclusion holds)."""
        schema, site = homepage
        constraint = (
            "forall X (PaperPresentation(X) => "
            'exists Y (AbstractPage(Y) and X -> "abstractPage" -> Y))'
        )
        assert verify_static(constraint, schema) is Verdict.VERIFIED
        assert check(constraint, site).holds

    def test_schema_connectedness_helper(self, homepage):
        schema, _ = homepage
        assert schema.is_connected("RootPage")
        assert not schema.is_connected("YearPage")  # root not reachable back

    def test_soundness_sweep(self, homepage):
        """Anything the static verifier proves must hold on the instance."""
        schema, site = homepage
        candidates = [
            'forall X (YearPage(X) => exists Y (RootPage(Y) and Y -> "YearPage" -> X))',
            'forall X (CategoryPage(X) => exists Y (RootPage(Y) and Y -> "CategoryPage" -> X))',
            'forall X (AbstractPage(X) => exists Y (AbstractsPage(Y) and Y -> "Abstract" -> X))',
            "forall X (AbstractPage(X) => exists Y (RootPage(Y) and Y -> * -> X))",
            "forall X (PaperPresentation(X) => exists Y (CategoryPage(Y) and Y -> * -> X))",
            'forall X (YearPage(X) => exists Y (CategoryPage(Y) and Y -> "Paper" -> X))',
        ]
        for constraint in candidates:
            if verify_static(constraint, schema) is Verdict.VERIFIED:
                assert check(constraint, site).holds, constraint
