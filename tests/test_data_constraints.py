"""Declarative data constraints: parser, checker, static DC0xx pass,
ingest gate, incremental re-checking, and the CLI surface."""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    Analyzer,
    check_data_constraints,
    render_sarif,
    required_guaranteed,
)
from repro.constraints import (
    CheckCounters,
    ConstraintChecker,
    ConstraintPolicy,
    ConstraintSet,
    DataConstraint,
    IncrementalChecker,
    apply_constraint_gate,
    global_counters,
    parse_constraints,
    reset_global_counters,
)
from repro.core.constraints import parse_constraint
from repro.core.schema import SiteSchema
from repro.errors import ConstraintError, ConstraintViolation, QuarantineExceeded
from repro.graph import Graph, Oid
from repro.graph.values import integer, string
from repro.mediator import Mediator
from repro.resilience import (
    QuarantineReport,
    ResiliencePolicy,
    ResilienceReport,
    WrapPolicy,
)
from repro.struql import parse
from repro.wrappers import BibtexWrapper
from repro.workloads.bibliography import HOMEPAGE_QUERY, bibliography_graph

SIX_KINDS = """
on Pubs {
  required title
  exclusive doi
  range year 1900 2100
  regexp doi "10\\..*"
  max_len title 100
  expression ( __subject__ -> "title" -> t )
}
"""


def pubs_graph():
    """Two members: p1 clean, p2 violating most constraints."""
    g = Graph()
    a = g.add_node(hint="p1")
    b = g.add_node(hint="p2")
    g.add_to_collection("Pubs", a)
    g.add_to_collection("Pubs", b)
    g.add_edge(a, "title", string("Alpha"))
    g.add_edge(a, "doi", string("10.1/x"))
    g.add_edge(a, "year", integer(1998))
    g.add_edge(b, "doi", string("10.1/x"))  # exclusive collision
    g.add_edge(b, "year", integer(2999))  # out of range
    return g, a, b


# ------------------------------------------------------------------ #
# parser


class TestParser:
    def test_all_six_kinds(self):
        cset = parse_constraints(SIX_KINDS, "rules.dc")
        assert cset.ok
        assert [c.kind for c in cset] == [
            "required", "exclusive", "range", "regexp", "max_len", "expression",
        ]
        assert all(c.collection == "Pubs" for c in cset)

    def test_spans_point_at_rule_keywords(self):
        cset = parse_constraints(SIX_KINDS, "rules.dc")
        lines = [c.line for c in cset]
        assert lines == [3, 4, 5, 6, 7, 8]
        assert all(c.column == 3 for c in cset)

    def test_error_recovery_keeps_later_rules(self):
        cset = parse_constraints(
            "on Pubs {\n  range year oops 2100\n  required title\n}"
        )
        assert len(cset.issues) == 1
        assert cset.issues[0].line == 2
        assert [c.kind for c in cset] == ["required"]

    def test_empty_range_is_an_issue(self):
        cset = parse_constraints("on Pubs { range year 2100 1900 }")
        assert any("empty range" in issue.message for issue in cset.issues)
        assert len(cset) == 0

    def test_bad_regexp_is_an_issue(self):
        cset = parse_constraints('on Pubs { regexp doi "(" }')
        assert any("bad pattern" in issue.message for issue in cset.issues)

    def test_expression_must_use_subject(self):
        cset = parse_constraints('on Pubs { expression ( x -> "title" -> t ) }')
        assert any("__subject__" in issue.message for issue in cset.issues)

    def test_lexer_error_becomes_issue_with_span(self):
        cset = parse_constraints('on Pubs { regexp doi "unterminated }')
        assert not cset.ok
        assert cset.issues[0].line >= 1

    def test_quoted_names(self):
        cset = parse_constraints('on "My Coll" { required "my label" }')
        assert cset.ok
        assert cset.constraints[0].collection == "My Coll"
        assert cset.constraints[0].label == "my label"

    def test_str_roundtrip_reads_naturally(self):
        cset = parse_constraints(SIX_KINDS)
        assert str(cset.constraints[2]) == "on Pubs: range year 1900 2100"

    def test_duplicate_keys_compare_equal(self):
        cset = parse_constraints(
            "on Pubs { required title }\non Pubs { required title }"
        )
        assert cset.constraints[0].key() == cset.constraints[1].key()


# ------------------------------------------------------------------ #
# checker


class TestChecker:
    def test_verdicts_per_kind(self):
        graph, a, b = pubs_graph()
        cset = parse_constraints(SIX_KINDS)
        violations = ConstraintChecker(graph, cset).check_all()
        subjects = {(v.constraint.kind, v.subject) for v in violations}
        assert ("required", b) in subjects
        assert ("exclusive", b) in subjects
        assert ("range", b) in subjects
        assert ("expression", b) in subjects
        assert all(subject is not a for _, subject in subjects)

    def test_exclusive_blames_all_but_canonical_holder(self):
        graph, a, b = pubs_graph()
        cset = parse_constraints("on Pubs { exclusive doi }")
        checker = ConstraintChecker(graph, cset)
        constraint = cset.constraints[0]
        assert checker.check_subject(constraint, a) is None
        violation = checker.check_subject(constraint, b)
        assert violation is not None and "not exclusive" in violation.message

    def test_value_refutation_on_clean_data(self):
        graph, a, b = pubs_graph()
        graph.remove_edge(b, "year", integer(2999))
        graph.add_edge(b, "year", integer(2001))
        cset = parse_constraints("on Pubs { range year 1900 2100 }")
        checker = ConstraintChecker(graph, cset)
        assert checker.refuted_on_data(cset.constraints[0])
        counters = checker.counters
        assert checker.check_all() == []
        assert counters.refuted == 1 and counters.checked == 0

    def test_exclusive_refutation_needs_all_unique(self):
        graph, a, b = pubs_graph()
        cset = parse_constraints("on Pubs { exclusive doi }")
        checker = ConstraintChecker(graph, cset)
        assert not checker.refuted_on_data(cset.constraints[0])

    def test_non_numeric_range_value_violates(self):
        g = Graph()
        a = g.add_node()
        g.add_to_collection("Pubs", a)
        g.add_edge(a, "year", string("about 1998"))
        cset = parse_constraints("on Pubs { range year 1900 2100 }")
        violations = ConstraintChecker(g, cset).check_all()
        assert len(violations) == 1 and "not numeric" in violations[0].message

    def test_global_counters_accumulate(self):
        reset_global_counters()
        graph, _, _ = pubs_graph()
        cset = parse_constraints("on Pubs { required title }")
        ConstraintChecker(graph, cset).check_all()
        assert global_counters().checked == 2
        assert global_counters().violated == 1
        reset_global_counters()


# ------------------------------------------------------------------ #
# static DC0xx pass


def schema_for(query: str) -> SiteSchema:
    return SiteSchema.from_program(parse(query))


class TestStaticPass:
    def test_dc001_parse_issue_with_span(self):
        cset = parse_constraints("on Pubs {\n  range year oops 2100\n}", "f.dc")
        diags = check_data_constraints(cset)
        dc1 = [d for d in diags if d.code == "DC001"]
        assert len(dc1) == 1
        assert dc1[0].span.file == "f.dc"
        assert dc1[0].span.line == 2 and dc1[0].span.column > 0

    def test_dc002_unknown_collection(self):
        data = bibliography_graph(5, seed=1)
        cset = parse_constraints("on Ghosts { required title }")
        diags = check_data_constraints(cset, data_graph=data)
        assert [d.code for d in diags] == ["DC002"]

    def test_dc003_unknown_label(self):
        data = bibliography_graph(5, seed=1)
        cset = parse_constraints("on Publications { max_len nosuch 10 }")
        diags = check_data_constraints(cset, data_graph=data)
        assert [d.code for d in diags] == ["DC003"]

    def test_dc004_violation_counts_and_witness(self):
        data = bibliography_graph(5, seed=1)
        cset = parse_constraints("on Publications { required doi }")
        diags = check_data_constraints(cset, data_graph=data)
        assert [d.code for d in diags] == ["DC004"]
        assert "5 member(s)" in diags[0].message

    def test_dc005_schema_refutation_of_required(self):
        schema = schema_for(HOMEPAGE_QUERY)
        assert required_guaranteed(schema, "Presentations", "abstractPage")
        assert not required_guaranteed(schema, "YearPages", "nosuch")
        cset = parse_constraints("on Presentations { required abstractPage }")
        diags = check_data_constraints(cset, schema=schema)
        assert [d.code for d in diags] == ["DC005"]
        assert "mapping queries" in diags[0].message

    def test_dc005_guarded_edge_not_guaranteed(self):
        # YearPage's "Year" edge lives in a nested (guarded) block, but so
        # does the creation, so it IS guaranteed; a label from the outer
        # block attached conditionally is not.  Use a handmade query.
        schema = schema_for(
            """
            where Items(x)
            create Page(x)
            collect Pages(Page(x))
            {
              where x -> "extra" -> e
              link Page(x) -> "extra" -> e
            }
            """
        )
        assert not required_guaranteed(schema, "Pages", "extra")

    def test_dc005_value_index_refutation(self):
        data = bibliography_graph(5, seed=1)
        cset = parse_constraints("on Publications { range year 1900 2100 }")
        diags = check_data_constraints(cset, data_graph=data)
        assert [d.code for d in diags] == ["DC005"]
        assert "value index" in diags[0].message

    def test_dc006_dynamic(self):
        data = bibliography_graph(5, seed=1)
        cset = parse_constraints(
            'on Publications { expression ( __subject__ -> "title" -> t ) }'
        )
        diags = check_data_constraints(cset, data_graph=data)
        assert [d.code for d in diags] == ["DC006"]

    def test_dc007_duplicate(self):
        data = bibliography_graph(5, seed=1)
        cset = parse_constraints(
            "on Publications { required title }\n"
            "on Publications { required title }"
        )
        diags = check_data_constraints(cset, data_graph=data)
        assert [d.code for d in diags] == ["DC006", "DC007"]

    def test_analyzer_integration_and_suppression(self):
        data = bibliography_graph(5, seed=1)
        cset = parse_constraints("on Publications { required doi }", "f.dc")
        report = Analyzer(
            query=HOMEPAGE_QUERY, data_graph=data, data_constraints=cset
        ).run()
        assert [d.code for d in report.diagnostics if d.code == "DC004"]
        assert not report.ok
        suppressed = Analyzer(
            query=HOMEPAGE_QUERY, data_graph=data, data_constraints=cset
        ).run(suppress=["DC004"])
        assert not suppressed.by_code("DC004")
        assert suppressed.ok

    def test_analyzer_checks_constraints_even_on_bad_query(self):
        data = bibliography_graph(5, seed=1)
        cset = parse_constraints("on Publications { required doi }")
        report = Analyzer(
            query="where !!!", data_graph=data, data_constraints=cset
        ).run()
        assert report.by_code("SQ000")
        assert report.by_code("DC004")

    def test_sarif_rule_index_and_full_description(self):
        data = bibliography_graph(5, seed=1)
        cset = parse_constraints(
            "on Publications { required doi }\non Ghosts { required x }"
        )
        report = Analyzer(
            query=HOMEPAGE_QUERY, data_graph=data, data_constraints=cset
        ).run()
        sarif = json.loads(render_sarif(report))
        run = sarif["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        ids = [rule["id"] for rule in rules]
        for result in run["results"]:
            assert ids[result["ruleIndex"]] == result["ruleId"]
        dc_rules = [r for r in rules if r["id"].startswith("DC")]
        assert dc_rules and all("fullDescription" in r for r in dc_rules)


# ------------------------------------------------------------------ #
# constraint parser spans (bugfix: ConstraintError carries line/column)


class TestConstraintErrorSpans:
    def test_parse_constraint_error_has_position(self):
        with pytest.raises(ConstraintError) as info:
            parse_constraint("forall X (Pubs(X) => exists Y (")
        assert info.value.line >= 1 and info.value.column >= 1

    def test_trailing_input_has_position(self):
        with pytest.raises(ConstraintError) as info:
            parse_constraint("forall X (A(X) => B(X)) garbage")
        assert info.value.column > 1

    def test_con001_diagnostic_gains_column(self):
        from repro.analysis import check_constraints

        schema = schema_for("create Root()\ncollect Roots(Root())")
        diags = check_constraints(
            ["forall X (Roots(X) => ("], schema, constraint_file="c.txt"
        )
        assert diags[0].code == "CON001"
        assert diags[0].span.column > 0


# ------------------------------------------------------------------ #
# ingest gate


class TestGate:
    def test_strict_policy_raises(self):
        graph, _, _ = pubs_graph()
        cset = parse_constraints("on Pubs { range year 1900 2100 }")
        policy = WrapPolicy.strict(constraints=ConstraintPolicy(cset))
        with pytest.raises(ConstraintViolation):
            apply_constraint_gate(graph, policy, QuarantineReport(), "src")

    def test_tolerant_policy_removes_and_reports(self):
        graph, a, b = pubs_graph()
        cset = parse_constraints("on Pubs { range year 1900 2100 }")
        policy = WrapPolicy.tolerant(constraints=ConstraintPolicy(cset))
        report = QuarantineReport(source="src")
        violations = apply_constraint_gate(graph, policy, report, "src")
        assert len(violations) == 1
        assert not graph.has_node(b) and graph.has_node(a)
        assert report.count == 1
        assert report.records[0].locator.startswith("Pubs:")
        assert "constraint violation" in report.records[0].error

    def test_budget_exceeded(self):
        graph, _, _ = pubs_graph()
        cset = parse_constraints("on Pubs { required doi }\non Pubs { required nope }")
        policy = WrapPolicy.tolerant(
            max_errors=1, constraints=ConstraintPolicy(cset)
        )
        with pytest.raises(QuarantineExceeded):
            apply_constraint_gate(graph, policy, QuarantineReport(), "src")

    def test_no_constraints_is_a_noop(self):
        graph, _, _ = pubs_graph()
        assert apply_constraint_gate(
            graph, WrapPolicy.tolerant(), QuarantineReport(), "src"
        ) == []

    def test_wrapper_threads_the_gate(self):
        bib = (
            "@article{ok, title={A}, author={B}, year={1998}, journal={J}}\n"
            "@article{bad, title={B}, author={C}, year={2999}, journal={J}}\n"
        )
        cset = parse_constraints("on Publications { range year 1900 2100 }")
        wrapper = BibtexWrapper(bib, source_name="bib")
        graph = wrapper.wrap(
            WrapPolicy.tolerant(constraints=ConstraintPolicy(cset))
        )
        assert len(graph.collection("Publications")) == 1
        assert wrapper.last_quarantine.count == 1
        record = wrapper.last_quarantine.records[0]
        assert "outside [1900, 2100]" in record.error
        assert "range year" in record.snippet

    def test_wrapper_strict_gate_raises(self):
        bib = "@article{bad, title={B}, author={C}, year={2999}, journal={J}}\n"
        cset = parse_constraints("on Publications { range year 1900 2100 }")
        with pytest.raises(ConstraintViolation):
            BibtexWrapper(bib).wrap(
                WrapPolicy.strict(constraints=ConstraintPolicy(cset))
            )


class TestMediatorGate:
    def test_cross_source_exclusive_caught_at_warehouse(self):
        # each source is internally exclusive; the collision is only
        # visible after integration
        bib_a = "@article{a1, title={A}, author={X}, year={1998}, journal={J}, url={http://dup}}\n"
        bib_b = "@article{b1, title={B}, author={Y}, year={1999}, journal={J}, url={http://dup}}\n"
        cset = parse_constraints("on Publications { exclusive url }")
        policy = ResiliencePolicy(
            wrap=WrapPolicy.tolerant(constraints=ConstraintPolicy(cset))
        )
        mediator = Mediator(policy=policy)
        mediator.add_source("a", BibtexWrapper(bib_a, source_name="a"))
        mediator.add_source("b", BibtexWrapper(bib_b, source_name="b"))
        mediator.import_source("a")
        mediator.import_source("b")
        warehouse = mediator.materialize("data", policy)
        report = mediator.last_report
        assert report.constraints["violated"] >= 1
        assert len(report.constraints["quarantined"]) == 1
        assert report.partial
        assert len(warehouse.collection("Publications")) == 1
        prov = Oid("mediation:provenance")
        labels = [label for label, _ in warehouse.out_edges(prov)]
        assert "constraintViolations" in labels
        assert "constraintQuarantined" in labels

    def test_resilience_report_folds_constraints(self, tmp_path):
        bib = "@article{bad, title={B}, author={C}, year={2999}, journal={J}}\n"
        cset = parse_constraints("on Publications { range year 1900 2100 }")
        policy = ResiliencePolicy(
            wrap=WrapPolicy.tolerant(constraints=ConstraintPolicy(cset))
        )
        mediator = Mediator(policy=policy)
        mediator.add_source("bib", BibtexWrapper(bib, source_name="bib"))
        mediator.import_source("bib")
        mediator.materialize("data", policy)
        report = ResilienceReport().record_mediation(mediator)
        assert report.constraints["checked"] >= 1
        assert any("constraints:" in line for line in report.summary_lines())
        path = tmp_path / "resilience.json"
        report.save(str(path))
        loaded = ResilienceReport.load(str(path))
        assert loaded.constraints == report.constraints


# ------------------------------------------------------------------ #
# incremental checking


def fresh_verdicts(graph, cset):
    checker = IncrementalChecker(graph, cset)
    checker.full_check()
    return checker.verdicts()


class TestIncremental:
    def test_one_edge_edit_rechecks_only_touched(self):
        graph = bibliography_graph(50, seed=3)
        cset = parse_constraints(
            "on Publications { required title\n  range year 1900 2100 }"
        )
        inc = IncrementalChecker(graph, cset)
        inc.full_check()
        total = inc.subject_count
        assert total == 100
        pub = graph.collection("Publications")[0]
        graph.add_edge(pub, "year", integer(1905))
        inc.recheck()
        assert inc.last_rechecked == 1
        assert inc.last_skipped == total - 1
        assert inc.verdicts() == fresh_verdicts(graph, cset)

    def test_counters_track_skips(self):
        graph = bibliography_graph(10, seed=3)
        cset = parse_constraints("on Publications { required title }")
        counters = CheckCounters()
        inc = IncrementalChecker(graph, cset, counters)
        inc.full_check()
        pub = graph.collection("Publications")[0]
        graph.add_edge(pub, "title", string("Another Title"))
        inc.recheck()
        assert counters.incremental_rechecked == 1
        assert counters.incremental_skipped == 9

    def test_exclusive_co_holders_reverdict(self):
        graph, a, b = pubs_graph()
        cset = parse_constraints("on Pubs { exclusive doi }")
        inc = IncrementalChecker(graph, cset)
        inc.full_check()
        assert len(inc.violations()) == 1
        # resolving the collision must clear BOTH holders' verdicts
        graph.remove_edge(b, "doi", string("10.1/x"))
        graph.add_edge(b, "doi", string("10.2/y"))
        inc.recheck()
        assert inc.violations() == []
        assert inc.verdicts() == fresh_verdicts(graph, cset)

    def test_membership_and_node_removal(self):
        graph, a, b = pubs_graph()
        cset = parse_constraints(SIX_KINDS.replace("Pubs", "Pubs"))
        inc = IncrementalChecker(graph, cset)
        inc.full_check()
        graph.remove_from_collection("Pubs", b)
        inc.recheck()
        assert inc.verdicts() == fresh_verdicts(graph, cset)
        graph.remove_node(a)
        inc.recheck()
        assert inc.verdicts() == fresh_verdicts(graph, cset)
        assert inc.subject_count == 0

    def test_expression_footprint_tracks_far_reads(self):
        # expression reads an edge two hops away; editing that far edge
        # must re-verdict the subject even though the subject's own
        # adjacency never changed
        g = Graph()
        a = g.add_node(hint="a")
        hub = g.add_node(hint="hub")
        g.add_to_collection("C", a)
        g.add_edge(a, "to", hub)
        g.add_edge(hub, "flag", string("on"))
        cset = parse_constraints(
            'on C { expression ( __subject__ -> "to" -> h, h -> "flag" -> "on" ) }'
        )
        inc = IncrementalChecker(g, cset)
        inc.full_check()
        assert inc.violations() == []
        g.remove_edge(hub, "flag", string("on"))
        g.add_edge(hub, "flag", string("off"))
        inc.recheck()
        assert len(inc.violations()) == 1
        assert inc.verdicts() == fresh_verdicts(g, cset)

    def test_coarse_fallback_on_truncated_log(self):
        graph = bibliography_graph(5, seed=3)
        cset = parse_constraints("on Publications { required title }")
        counters = CheckCounters()
        inc = IncrementalChecker(graph, cset, counters)
        inc.full_check()
        # overflow the bounded delta log
        scratch = graph.add_node(hint="scratch")
        for i in range(5000):
            graph.add_edge(scratch, "noise", integer(i))
        inc.recheck()
        assert counters.coarse_fallbacks == 1
        assert inc.verdicts() == fresh_verdicts(graph, cset)

    def test_no_op_recheck_skips_everything(self):
        graph = bibliography_graph(5, seed=3)
        cset = parse_constraints("on Publications { required title }")
        inc = IncrementalChecker(graph, cset)
        inc.full_check()
        inc.recheck()
        assert inc.last_rechecked == 0
        assert inc.last_skipped == 5


# ------------------------------------------------------------------ #
# property tests


@st.composite
def edit_scripts(draw):
    """A random stream of graph edits over a small two-collection world."""
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["add_edge", "remove_edge", "add_member", "remove_member",
                     "new_member", "remove_node"]
                ),
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=4),
            ),
            min_size=1,
            max_size=12,
        )
    )


PROP_RULES = parse_constraints(
    """
    on C {
      required name
      exclusive tag
      range score 0 10
      expression ( __subject__ -> "name" -> n )
    }
    """
)


def apply_edit(graph, nodes, op, i, j):
    labels = ["name", "tag", "score"]
    label = labels[j % len(labels)]
    values = [string("v0"), string("v1"), integer(5), integer(50)]
    value = values[(i + j) % len(values)]
    node = nodes[i % len(nodes)]
    if op == "add_edge":
        if not graph.has_edge(node, label, value):
            graph.add_edge(node, label, value)
    elif op == "remove_edge":
        targets = graph.targets(node, label)
        if targets:
            graph.remove_edge(node, label, targets[j % len(targets)])
    elif op == "add_member":
        graph.add_to_collection("C", node)
    elif op == "remove_member":
        if graph.in_collection("C", node):
            graph.remove_from_collection("C", node)
    elif op == "new_member":
        fresh = graph.add_node()
        nodes.append(fresh)
        graph.add_to_collection("C", fresh)
        graph.add_edge(fresh, "name", string(f"n{len(nodes)}"))
    elif op == "remove_node":
        if len(nodes) > 1 and graph.has_node(node):
            graph.remove_node(node)


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(script=edit_scripts())
    def test_incremental_equals_full_under_random_edits(self, script):
        graph = Graph()
        nodes = [graph.add_node(hint=f"n{i}") for i in range(4)]
        for i, node in enumerate(nodes):
            graph.add_to_collection("C", node)
            graph.add_edge(node, "name", string(f"name{i}"))
            graph.add_edge(node, "score", integer(i))
        inc = IncrementalChecker(graph, PROP_RULES)
        inc.full_check()
        for op, i, j in script:
            nodes = [n for n in nodes if graph.has_node(n)] or [graph.add_node()]
            apply_edit(graph, nodes, op, i, j)
            inc.recheck()
            assert inc.verdicts() == fresh_verdicts(graph, PROP_RULES)

    @settings(max_examples=40, deadline=None)
    @given(
        years=st.lists(
            st.integers(min_value=1800, max_value=2300), min_size=1, max_size=12
        )
    )
    def test_quarantine_admits_exactly_satisfying_records(self, years):
        entries = "\n".join(
            f"@article{{p{i}, title={{T{i}}}, author={{A}}, "
            f"year={{{year}}}, journal={{J}}}}"
            for i, year in enumerate(years)
        )
        cset = parse_constraints("on Publications { range year 1900 2100 }")
        wrapper = BibtexWrapper(entries, source_name="bib")
        graph = wrapper.wrap(
            WrapPolicy.tolerant(constraints=ConstraintPolicy(cset))
        )
        admitted = {
            graph.attribute(oid, "year").as_number()
            for oid in graph.collection("Publications")
        }
        expected = {float(y) for y in years if 1900 <= y <= 2100}
        assert admitted == expected
        quarantined = len([y for y in years if not 1900 <= y <= 2100])
        assert wrapper.last_quarantine.count == quarantined


# ------------------------------------------------------------------ #
# the seeded acceptance demo


class TestAcceptanceDemo:
    def test_analyze_refutes_and_flags_on_bibliography(self):
        data = bibliography_graph(40, seed=11)
        cset = parse_constraints(
            "on Presentations { required abstractPage }\n"
            "on Publications { required doi }\n"
            "on Publications { range year 1900 2100 }",
            "demo.dc",
        )
        report = Analyzer(
            query=HOMEPAGE_QUERY, data_graph=data, data_constraints=cset
        ).run()
        refuted = report.by_code("DC005")
        assert len(refuted) >= 2  # schema proof + value-index proof
        assert any("mapping queries" in d.message for d in refuted)
        assert report.by_code("DC004")  # required doi flagged

    def test_one_edge_edit_on_400_article_site(self):
        graph = bibliography_graph(400, seed=11)
        cset = parse_constraints(
            "on Publications {\n"
            "  required title\n"
            "  range year 1900 2100\n"
            "  exclusive postscript\n"
            "}"
        )
        inc = IncrementalChecker(graph, cset)
        inc.full_check()
        total = inc.subject_count
        assert total == 1200
        pub = graph.collection("Publications")[7]
        graph.add_edge(pub, "year", integer(1897))  # the 1-edge edit
        inc.recheck()
        # counter-verified: only delta-touched subjects re-checked
        assert inc.last_rechecked == 1
        assert inc.last_skipped == total - 1
        assert inc.verdicts() == fresh_verdicts(graph, cset)
        assert any(
            v.subject == pub and v.constraint.kind == "range"
            for v in inc.violations()
        )


# ------------------------------------------------------------------ #
# CLI


BIB_WITH_BAD_YEAR = """
@article{ok1, title={Alpha}, author={A}, year={1998}, journal={J}}
@article{bad, title={Beta}, author={B}, year={2999}, journal={J}}
@article{ok2, title={Gamma}, author={C}, year={2001}, journal={J}}
"""

DEMO_RULES = "on Publications {\n  range year 1900 2100\n}\n"


@pytest.fixture
def cli_workspace(tmp_path):
    (tmp_path / "pubs.bib").write_text(BIB_WITH_BAD_YEAR)
    (tmp_path / "rules.dc").write_text(DEMO_RULES)
    (tmp_path / "site.struql").write_text(
        "create Root()\n"
        'where Publications(x), x -> "title" -> t\n'
        "create Page(x)\n"
        'link Page(x) -> "title" -> t, Root() -> "Paper" -> Page(x)\n'
        "collect Pages(Page(x))\n"
    )
    return tmp_path


class TestCli:
    def test_ingest_quarantines_violators(self, cli_workspace, capsys):
        from repro.cli import main

        out = cli_workspace / "warehouse.ddl"
        code = main(
            [
                "ingest",
                "--source", f"bib=bibtex:{cli_workspace / 'pubs.bib'}",
                "--constraints", str(cli_workspace / "rules.dc"),
                "-o", str(out),
            ]
        )
        assert code == 1  # partial: a record was quarantined
        err = capsys.readouterr().err
        assert "constraints: checked=" in err
        assert "violated=1" in err
        from repro.repository import ddl

        warehouse = ddl.loads(out.read_text())
        assert len(warehouse.collection("Publications")) == 2

    def test_analyze_constraints_flag(self, cli_workspace, capsys):
        from repro.cli import main

        data = cli_workspace / "data.ddl"
        main(
            [
                "wrap", "bibtex", str(cli_workspace / "pubs.bib"),
                "-o", str(data),
            ]
        )
        code = main(
            [
                "analyze",
                "--query", str(cli_workspace / "site.struql"),
                "--data", str(data),
                "--constraints", str(cli_workspace / "rules.dc"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "DC004" in out and "range year" in out

    def test_stats_constraints_counters(self, cli_workspace, capsys):
        from repro.cli import main

        data = cli_workspace / "data.ddl"
        main(
            [
                "wrap", "bibtex", str(cli_workspace / "pubs.bib"),
                "-o", str(data),
            ]
        )
        capsys.readouterr()
        code = main(
            ["stats", str(data), "--constraints", str(cli_workspace / "rules.dc")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "constraints: checked=3 violated=1" in out
        assert "incremental-skipped=" in out
        assert "violated:" in out
