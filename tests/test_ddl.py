"""Unit tests for the data-definition language (repro.repository.ddl)."""

import pytest

from repro.errors import DDLSyntaxError
from repro.graph import AtomType, Graph, Oid, integer, string
from repro.repository import ddl

BASIC = """
# a comment
collection Publications {
  abstract: text
  postscript: postscript
}

object pub1 {
  title: "Strudel"
  year: 1998
  score: 4.5
  public: true
  abstract: "We describe..."
  related: ref pub2
}
object pub2 {
  title: "WebOQL"
}
member Publications: pub1, pub2
"""


class TestLoads:
    def test_nodes_created(self):
        graph = ddl.loads(BASIC)
        assert graph.has_node(Oid("pub1"))
        assert graph.has_node(Oid("pub2"))

    def test_collection_membership(self):
        graph = ddl.loads(BASIC)
        assert len(graph.collection("Publications")) == 2

    def test_number_typing(self):
        graph = ddl.loads(BASIC)
        year = graph.attribute(Oid("pub1"), "year")
        assert year.type is AtomType.INTEGER and year.value == 1998
        score = graph.attribute(Oid("pub1"), "score")
        assert score.type is AtomType.FLOAT

    def test_boolean(self):
        graph = ddl.loads(BASIC)
        assert graph.attribute(Oid("pub1"), "public").value is True

    def test_collection_default_applies(self):
        graph = ddl.loads(BASIC)
        abstract = graph.attribute(Oid("pub1"), "abstract")
        assert abstract.type is AtomType.TEXT_FILE

    def test_ref_edge(self):
        graph = ddl.loads(BASIC)
        assert graph.attribute(Oid("pub1"), "related") == Oid("pub2")

    def test_forward_reference_allowed(self):
        text = """
object a { next: ref b }
object b { name: "b" }
"""
        graph = ddl.loads(text)
        assert graph.attribute(Oid("a"), "next") == Oid("b")

    def test_explicit_type_overrides_default(self):
        text = """
collection C { val: integer }
object x { val: image "pic.gif" }
member C: x
"""
        graph = ddl.loads(text)
        assert graph.attribute(Oid("x"), "val").type is AtomType.IMAGE_FILE

    def test_quoted_names_round_trip_skolem_oids(self):
        text = 'object "YearPage(1998)" { v: 1 }'
        graph = ddl.loads(text)
        assert graph.has_node(Oid("YearPage(1998)"))

    def test_string_escapes(self):
        text = r'object a { v: "line\nbreak \"quoted\"" }'
        graph = ddl.loads(text)
        assert graph.attribute(Oid("a"), "v").value == 'line\nbreak "quoted"'


class TestLoadErrors:
    def test_dangling_ref(self):
        with pytest.raises(DDLSyntaxError):
            ddl.loads("object a { next: ref ghost }")

    def test_dangling_member(self):
        with pytest.raises(DDLSyntaxError):
            ddl.loads("member C: ghost")

    def test_bad_keyword(self):
        with pytest.raises(DDLSyntaxError):
            ddl.loads("banana a { }")

    def test_unterminated_string(self):
        with pytest.raises(DDLSyntaxError):
            ddl.loads('object a { v: "oops }')

    def test_unknown_type_in_defaults(self):
        with pytest.raises(DDLSyntaxError):
            ddl.loads("collection C { v: widget }")

    def test_missing_value(self):
        with pytest.raises(DDLSyntaxError):
            ddl.loads("object a { v: }")

    def test_error_carries_line_number(self):
        try:
            ddl.loads("object a {\n  v: @\n}")
        except DDLSyntaxError as error:
            assert error.line == 2
        else:  # pragma: no cover
            pytest.fail("expected DDLSyntaxError")


class TestDump:
    def _graph(self):
        graph = Graph()
        a = graph.add_node(Oid("a"))
        b = graph.add_node()  # anonymous: &1
        graph.add_edge(a, "title", string("hello world"))
        graph.add_edge(a, "year", integer(1998))
        graph.add_edge(a, "next", b)
        graph.add_edge(b, "weird label", string('va"lue'))
        graph.add_to_collection("Stuff", a)
        return graph

    def test_round_trip_structure(self):
        graph = self._graph()
        reloaded = ddl.loads(ddl.dumps(graph))
        assert reloaded.stats() == graph.stats()
        assert sorted(o.name for o in reloaded.nodes()) == sorted(
            o.name for o in graph.nodes()
        )

    def test_round_trip_edges(self):
        graph = self._graph()
        reloaded = ddl.loads(ddl.dumps(graph))
        original = {(s.name, l, str(t)) for s, l, t in graph.edges()}
        recovered = {(s.name, l, str(t)) for s, l, t in reloaded.edges()}
        assert original == recovered

    def test_round_trip_types(self):
        graph = self._graph()
        reloaded = ddl.loads(ddl.dumps(graph))
        assert reloaded.attribute(Oid("a"), "year").type is AtomType.INTEGER

    def test_round_trip_collections(self):
        graph = self._graph()
        reloaded = ddl.loads(ddl.dumps(graph))
        assert [o.name for o in reloaded.collection("Stuff")] == ["a"]

    def test_dump_quotes_special_names(self):
        graph = Graph()
        graph.add_node(Oid("YearPage(1998)"))
        text = ddl.dumps(graph)
        assert '"YearPage(1998)"' in text

    def test_round_trip_newlines_in_values(self):
        graph = Graph()
        oid = graph.add_node(Oid("a"))
        graph.add_edge(oid, "text", string("two\nlines\tand a tab"))
        reloaded = ddl.loads(ddl.dumps(graph))
        assert reloaded.attribute(Oid("a"), "text").value == "two\nlines\tand a tab"
