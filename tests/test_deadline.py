"""Deadline propagation, cooperative cancellation, and SQL crash recovery.

The load-bearing properties of the robustness PR:

* a request-scoped :class:`Deadline` threads from HTTP admission through
  every evaluation layer (block operators, path search, template
  expansion, SQL pushdown) and cancels cooperatively -- a structured
  :class:`DeadlineExceeded`, never a hung worker or a traceback;
* an adversarial query (cyclic ``(link)*`` star path over a graph sized
  to blow the budget) against ``repro serve`` returns a structured 504
  within 2x the configured deadline while concurrent well-behaved
  requests keep serving -- for both memory and sqlite backends;
* keep-alive connections are bounded by an idle timeout and a
  max-requests cap, so no worker is pinned by an idle client;
* ``/healthz`` and ``/readyz`` answer liveness and readiness;
* a chaos fault at any ``sql.*`` fault site leaves the SQLite
  repository loadable, or auto-recovered from its DDL snapshots on the
  next open (bit-flip corruption included);
* every cancellation and recovery is counted: ``deadline_exceeded``,
  ``watchdog_flags``, ``sql_interrupts``, ``integrity_recoveries``,
  and the slow-query ledger the ResilienceReport folds in.
"""

import http.client
import threading
import time

import pytest

from repro.errors import DeadlineExceeded, StrudelError
from repro.graph import Graph
from repro.repository import SqlRepository, ddl
from repro.repository.sql import SqlGraph
from repro.resilience import (
    Deadline,
    ResilienceReport,
    check_deadline,
    current_deadline,
    deadline_scope,
    install_deadline,
    record_slow_query,
    reset_slow_queries,
    slow_queries,
)
from repro.resilience.chaos import ChaosFault, FaultPlan, flip_bit, installed
from repro.resilience.report import reset_recovery_events
from repro.serve import ServeCore, SiteServer, Watchdog
from repro.struql import evaluate, parse
from repro.workloads import HOMEPAGE_QUERY, bibliography_graph, homepage_templates


@pytest.fixture(autouse=True)
def _clean_ledgers():
    reset_slow_queries()
    yield
    reset_slow_queries()
    reset_recovery_events()
    install_deadline(None)


# ------------------------------------------------------------------ #
# the Deadline primitive


class TestDeadline:
    def test_rejects_bad_budget_and_stride(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-1.0)
        with pytest.raises(ValueError):
            Deadline(1.0, stride=3)  # not a power of two

    def test_elapsed_remaining_expired(self):
        deadline = Deadline(60.0)
        assert not deadline.expired()
        assert deadline.remaining() <= 60.0
        assert deadline.elapsed() < 1.0
        tiny = Deadline(0.000001)
        time.sleep(0.002)
        assert tiny.expired()
        assert tiny.remaining() <= 0.0

    def test_check_raises_structured_error(self):
        deadline = Deadline(0.000001)
        time.sleep(0.002)
        with pytest.raises(DeadlineExceeded) as info:
            deadline.check("unit.site")
        assert info.value.site == "unit.site"
        assert info.value.budget == 0.000001
        assert info.value.elapsed >= info.value.budget
        assert isinstance(info.value, StrudelError)

    def test_tick_only_reads_clock_on_stride(self):
        deadline = Deadline(0.000001, stride=8)
        time.sleep(0.002)
        for _ in range(7):  # ticks 1..7: no clock read, no raise
            deadline.tick("unit.site")
        with pytest.raises(DeadlineExceeded):
            deadline.tick("unit.site")  # tick 8 checks

    def test_scope_installs_and_restores(self):
        assert current_deadline() is None
        outer = Deadline(60.0)
        with deadline_scope(outer):
            assert current_deadline() is outer
            inner = Deadline(30.0)
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer
        assert current_deadline() is None

    def test_check_deadline_helper(self):
        check_deadline("anywhere")  # no ambient deadline: no-op
        expired = Deadline(0.000001)
        time.sleep(0.002)
        with deadline_scope(expired):
            with pytest.raises(DeadlineExceeded):
                check_deadline("anywhere")

    def test_scope_is_thread_local(self):
        seen = {}
        with deadline_scope(Deadline(60.0)):

            def probe():
                seen["other"] = current_deadline()

            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["other"] is None


# ------------------------------------------------------------------ #
# cancellation inside the evaluation layers


def _cyclic_graph(n, k):
    """A dense cyclic 'link' graph: every node reaches every node, so a
    ``(link)*`` star path from all sources costs O(n^2 * k)."""
    graph = Graph("cyclic")
    oids = [graph.add_node(hint=f"n{i}") for i in range(n)]
    for i, oid in enumerate(oids):
        graph.add_to_collection("Entries", oid)
        for j in range(1, k + 1):
            graph.add_edge(oid, "link", oids[(i + j * 7) % n])
    return graph


class TestEngineCancellation:
    def test_star_path_cancelled_within_bound(self):
        graph = _cyclic_graph(400, 8)
        program = parse('where x -> ( "link" )* -> y collect Out(x)')
        started = time.monotonic()
        with deadline_scope(Deadline(0.2)):
            with pytest.raises(DeadlineExceeded) as info:
                evaluate(program, graph)
        elapsed = time.monotonic() - started
        assert elapsed < 0.4  # 2x the budget
        assert info.value.site  # names where it was caught

    def test_normal_query_unaffected_by_far_deadline(self):
        graph = bibliography_graph(10, seed=3)
        program = parse(HOMEPAGE_QUERY)
        plain = evaluate(program, graph)
        with deadline_scope(Deadline(3600.0)):
            under = evaluate(program, graph)
        assert under.stats() == plain.stats()

    def test_template_render_ticks(self):
        """Template expansion checks the ambient deadline too."""
        from repro.template import generate_site

        graph = bibliography_graph(20, seed=5)
        site = evaluate(parse(HOMEPAGE_QUERY), graph)
        expired = Deadline(0.000001, stride=1)  # check the clock every tick
        time.sleep(0.002)
        with deadline_scope(expired):
            with pytest.raises(DeadlineExceeded) as info:
                generate_site(site, homepage_templates(), ["RootPage()"])
        assert info.value.site == "template.render"


class TestSqlCancellation:
    def test_pushdown_query_interrupted(self):
        """A runaway SQL statement is aborted via the progress handler
        and surfaces as DeadlineExceeded, counted as an interrupt."""
        repository = SqlRepository()  # in-memory SQLite
        repository.store("g", _cyclic_graph(50, 3))
        store = repository.store_backend
        # a recursive CTE that explodes combinatorially
        runaway = """
        WITH RECURSIVE walk(n, depth) AS (
            SELECT 1, 0
            UNION ALL
            SELECT (walk.n * 7 + e.id) % 1000000, walk.depth + 1
            FROM walk, edges AS e WHERE walk.depth < 6
        ) SELECT COUNT(*) FROM walk
        """
        started = time.monotonic()
        with deadline_scope(Deadline(0.2)):
            with pytest.raises(DeadlineExceeded) as info:
                store.query_named(runaway, {})
        assert time.monotonic() - started < 0.4
        assert info.value.site == "sql.pushdown"
        assert store.interrupts == 1

    def test_pushdown_without_deadline_runs_free(self):
        repository = SqlRepository()
        repository.store("g", _cyclic_graph(10, 2))
        store = repository.store_backend
        rows = store.query_named("SELECT COUNT(*) FROM edges", {})
        assert rows[0][0] > 0
        assert store.interrupts == 0


# ------------------------------------------------------------------ #
# the serving tier: 504s, health, keep-alive, watchdog


ADVERSARIAL_QUERY = """
create RootPage(), SlowPage()
link RootPage() -> "Slow" -> SlowPage()
where Entries(x), x -> ( "link" )* -> t
create HitPage(t)
link SlowPage() -> "Hit" -> HitPage(t),
     HitPage(t) -> "name" -> t
collect Hits(HitPage(t))
"""


def _adversarial_templates():
    from repro.template import TemplateSet

    templates = TemplateSet()
    templates.add("rootpage", "<html><body><h1>Root</h1></body></html>\n")
    templates.add(
        "slowpage", "<html><body><h1>Hits</h1><SFMT Hit COUNT></body></html>\n"
    )
    templates.add("hitpage", "<html><body><SFMT name></body></html>\n")
    templates.for_object("RootPage()", "rootpage")
    templates.for_object("SlowPage()", "slowpage")
    templates.for_collection("Hits", "hitpage")
    return templates


def _get(server, path, timeout=60):
    connection = http.client.HTTPConnection(server.host, server.port, timeout=timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


class TestServe504:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_adversarial_query_times_out_while_healthy_traffic_serves(
        self, backend, tmp_path
    ):
        budget = 0.4
        graph = _cyclic_graph(300, 6)
        if backend == "sqlite":
            repository = SqlRepository(str(tmp_path))
            repository.store("adv", graph)
            graph = repository.fetch("adv")
        core = ServeCore(
            ADVERSARIAL_QUERY, graph, _adversarial_templates(), dynamic=True
        )
        server = SiteServer(core, workers=2, deadline_budget=budget).start()
        try:
            # warm the healthy page into the shared generation cache with
            # deadlines off; this also fills the path-reachability memo
            server.httpd.deadline_budget = None
            status, _, _ = _get(server, "/")
            assert status == 200
            server.httpd.deadline_budget = budget
            # invalidate the memo: a data edit bumps the graph epoch, so
            # the adversarial render must recompute from scratch -- but
            # "/" keeps serving from the generation cache
            graph.add_node(hint="epoch-bump")

            healthy = []

            def well_behaved():
                for _ in range(25):
                    healthy.append(_get(server, "/")[0])

            thread = threading.Thread(target=well_behaved)
            thread.start()
            started = time.monotonic()
            status, headers, body = _get(server, "/SlowPage.html")
            elapsed = time.monotonic() - started
            thread.join()

            assert status == 504
            assert elapsed < 2 * budget
            assert b"Traceback" not in body
            assert b"504" in body or b"timed out" in body
            assert healthy and set(healthy) == {200}

            stats = server.stats()
            assert stats["core"]["deadline_exceeded"] >= 1
            if backend == "sqlite":
                assert "sql_interrupts" in stats["core"]
            reports = slow_queries()
            assert any(
                r["path"] == "/SlowPage.html" and r["kind"] == "deadline"
                for r in reports
            )
        finally:
            assert server.stop()

    def test_504_entry_never_cached(self, tmp_path):
        """A cancelled render must not poison the generation cache: the
        page stays renderable once the deadline pressure is gone."""
        graph = _cyclic_graph(120, 4)
        core = ServeCore(
            ADVERSARIAL_QUERY, graph, _adversarial_templates(), dynamic=True
        )
        server = SiteServer(core, workers=1, deadline_budget=0.05).start()
        try:
            status, _, _ = _get(server, "/SlowPage.html")
            assert status == 504
            server.httpd.deadline_budget = None
            status, _, body = _get(server, "/SlowPage.html")
            assert status == 200
            assert b"Hits" in body
        finally:
            assert server.stop()


class TestKeepAlive:
    @pytest.fixture()
    def server(self, request):
        core = ServeCore(
            parse(HOMEPAGE_QUERY),
            bibliography_graph(8, seed=9),
            homepage_templates(),
        )
        server = SiteServer(
            core,
            workers=1,
            idle_timeout=0.3,
            max_requests_per_connection=3,
        ).start()
        yield server
        assert server.stop()

    def test_idle_connection_released_within_idle_timeout(self, server):
        """An idle keep-alive client must not pin the single worker for
        the full request timeout: after idle_timeout the worker is free
        to serve other connections."""
        idle = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            idle.request("GET", "/")
            idle.getresponse().read()  # keep-alive: connection stays open
            time.sleep(0.5)  # exceed idle_timeout; server closes our slot
            started = time.monotonic()
            status, _, _ = _get(server, "/", timeout=5)
            assert status == 200
            assert time.monotonic() - started < 2.0
        finally:
            idle.close()

    def test_max_requests_per_connection_cap(self, server):
        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            for index in range(3):
                connection.request("GET", "/")
                response = connection.getresponse()
                response.read()
                header = (response.getheader("Connection") or "").lower()
                if index < 2:
                    assert header != "close", f"closed early at request {index + 1}"
                else:
                    assert header == "close"  # capped: server asks to close
        finally:
            connection.close()


class TestHealthEndpoints:
    @pytest.fixture()
    def server(self):
        core = ServeCore(
            parse(HOMEPAGE_QUERY),
            bibliography_graph(8, seed=11),
            homepage_templates(),
        )
        server = SiteServer(core, workers=2).start()
        yield server
        assert server.stop()

    def test_healthz(self, server):
        import json

        status, _, body = _get(server, "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["ok"] is True
        assert payload["workers_alive"] == 2

    def test_readyz_ready_then_draining(self, server):
        import json

        status, _, body = _get(server, "/readyz")
        assert status == 200
        payload = json.loads(body)
        assert payload["ready"] is True
        assert payload["checks"]["db_integrity"] is True
        server.httpd.draining = False  # ensure a clean baseline
        try:
            server.httpd.draining = True
            # draining sheds new connections with 503 before readyz runs,
            # which is itself a correct "not ready" answer
            status, _, _ = _get(server, "/readyz")
            assert status == 503
        finally:
            server.httpd.draining = False

    def test_readyz_unready_on_stale_generation(self, server):
        server.core.cache.current().stale = True
        try:
            status, _, body = _get(server, "/readyz")
            assert status == 503
            assert b'"generation_fresh": false' in body
        finally:
            server.core.cache.current().stale = False


class _StubCore:
    """A minimal inflight()/sql_store() surface for watchdog units."""

    def __init__(self, records, store=None):
        self.records = records
        self._sql = store

    def inflight(self):
        return self.records

    def sql_store(self):
        return self._sql


class _StubStore:
    def __init__(self):
        self.interrupted = 0

    def interrupt(self):
        self.interrupted += 1


class TestWatchdog:
    def test_flags_stuck_request_once(self):
        record = {
            "worker": 0,
            "path": "/stuck.html",
            "since": 100.0,
            "elapsed_s": 9.0,
            "budget_s": 1.0,
        }
        watchdog = Watchdog(_StubCore([record]), stuck_factor=2.0)
        assert watchdog.scan() == 1
        assert watchdog.scan() == 0  # same request: no re-flag
        assert watchdog.flags == 1
        reports = [r for r in slow_queries() if r["kind"] == "watchdog"]
        assert len(reports) == 1
        assert reports[0]["path"] == "/stuck.html"

    def test_within_budget_not_flagged(self):
        record = {
            "worker": 0,
            "path": "/fine.html",
            "since": 100.0,
            "elapsed_s": 1.5,
            "budget_s": 1.0,
        }
        watchdog = Watchdog(_StubCore([record]), stuck_factor=2.0)
        assert watchdog.scan() == 0

    def test_uses_default_budget_when_request_has_none(self):
        record = {
            "worker": 1,
            "path": "/nodl.html",
            "since": 50.0,
            "elapsed_s": 30.0,
            "budget_s": None,
        }
        watchdog = Watchdog(_StubCore([record]), stuck_factor=2.0, default_budget=10.0)
        assert watchdog.scan() == 1

    def test_interrupts_sql_backed_core(self):
        store = _StubStore()
        record = {
            "worker": 0,
            "path": "/stuck.html",
            "since": 100.0,
            "elapsed_s": 9.0,
            "budget_s": 1.0,
        }
        watchdog = Watchdog(_StubCore([record], store), stuck_factor=2.0)
        watchdog.scan()
        assert store.interrupted == 1
        assert watchdog.sql_interrupts_sent == 1

    def test_finished_requests_forgotten(self):
        record = {
            "worker": 0,
            "path": "/stuck.html",
            "since": 100.0,
            "elapsed_s": 9.0,
            "budget_s": 1.0,
        }
        core = _StubCore([record])
        watchdog = Watchdog(core, stuck_factor=2.0)
        watchdog.scan()
        core.records = []  # request finished
        watchdog.scan()
        assert watchdog._flagged == set()

    def test_stats_and_served_through_http(self):
        core = ServeCore(
            parse(HOMEPAGE_QUERY),
            bibliography_graph(6, seed=13),
            homepage_templates(),
        )
        server = SiteServer(core, workers=1).start()
        try:
            import json

            stats = json.loads(_get(server, "/_stats")[2])
            assert "watchdog" in stats
            assert stats["watchdog"]["watchdog_flags"] == 0
        finally:
            assert server.stop()


# ------------------------------------------------------------------ #
# SQL crash recovery


def _small_graph():
    graph = Graph("small")
    a = graph.add_node(hint="a")
    b = graph.add_node(hint="b")
    graph.add_edge(a, "to", b)
    graph.add_edge(a, "name", "alpha")
    graph.add_to_collection("Pool", a)
    return graph


class TestSqlChaosRecovery:
    def test_commit_fault_rolls_back_not_leaks(self, tmp_path):
        repository = SqlRepository(str(tmp_path))
        with installed(FaultPlan().fail_at("sql.commit", 1)):
            with pytest.raises(ChaosFault):
                repository.store("g", _small_graph())
        # the transaction must not be leaked open: the next store works
        repository.store("g", _small_graph())
        assert repository.fetch("g").node_count == 2

    @pytest.mark.parametrize("site", ["sql.commit", "sql.fsync", "sql.snapshot"])
    def test_kill_at_fault_site_leaves_repository_loadable(self, site, tmp_path):
        """Simulated crash at every sql fault point: drop the repository
        object mid-store, then reopen the directory cold.  The reopened
        repository is either consistent or auto-recovered -- never a
        pile of exceptions."""
        directory = str(tmp_path / site.replace(".", "-"))
        repository = SqlRepository(directory)
        repository.store("stable", _small_graph())
        with installed(FaultPlan().fail_at(site, 1)):
            try:
                repository.store("victim", _small_graph())
            except ChaosFault:
                pass  # the "crash"
        del repository  # kill the process's handle
        reopened = SqlRepository(directory)
        assert "stable" in reopened
        graph = reopened.fetch("stable")
        assert graph.node_count == 2
        assert list(graph.collection("Pool"))
        # integrity holds after the crash
        assert reopened.store_backend.integrity_check() == []

    def test_bit_flip_corruption_recovers_from_snapshot(self, tmp_path):
        directory = str(tmp_path)
        repository = SqlRepository(directory)
        repository.store("g", _small_graph())
        db_path = repository.store_backend.path
        # close cleanly so the WAL checkpoints -- otherwise SQLite's own
        # WAL replay silently repairs the damage on the next open
        repository.store_backend.close()
        del repository
        flip_bit(db_path, offset=0)  # destroy the SQLite header
        flip_bit(db_path, offset=1)
        reset_recovery_events()
        reopened = SqlRepository(directory)
        assert reopened.integrity_recoveries == 1
        assert "g" in reopened
        restored = reopened.fetch("g")
        assert restored.node_count == 2
        assert list(restored.collection("Pool"))
        report = ResilienceReport().record_recoveries()
        assert any(
            "sql-repository" in event.get("subject", "")
            or "corrupt" in event.get("detail", "").lower()
            or "restored" in event.get("detail", "").lower()
            for event in report.recovery_events
        )

    def test_page_corruption_detected_by_quick_check(self, tmp_path):
        """Damage inside page data (not the header) is caught by the
        integrity check on open and recovered the same way."""
        directory = str(tmp_path)
        repository = SqlRepository(directory)
        repository.store("g", _cyclic_graph(40, 3))
        db_path = repository.store_backend.path
        repository.store_backend.close()  # checkpoint the WAL first
        del repository
        # several deterministic flips somewhere in page data
        for seed in range(6):
            flip_bit(db_path, seed=seed)
        reopened = SqlRepository(directory)
        if reopened.integrity_recoveries:
            assert reopened.fetch("g").node_count == 40
        else:
            # flips landed in dead space: database still sound
            assert reopened.store_backend.integrity_check() == []
            assert reopened.fetch("g").node_count == 40

    def test_snapshot_written_and_checksummed(self, tmp_path):
        import os

        repository = SqlRepository(str(tmp_path))
        repository.store("g", _small_graph())
        snapshot = os.path.join(str(tmp_path), "g.ddl")
        assert os.path.exists(snapshot)
        with open(snapshot) as handle:
            payload = handle.read()
        declared, body = ddl.split_checksum(payload)
        assert ddl.checksum(body) == declared

    def test_auto_snapshot_can_be_disabled(self, tmp_path):
        import os

        repository = SqlRepository(str(tmp_path), auto_snapshot=False)
        repository.store("g", _small_graph())
        assert not os.path.exists(os.path.join(str(tmp_path), "g.ddl"))


# ------------------------------------------------------------------ #
# counters and reporting


class TestCountersAndReport:
    def test_slow_query_ledger_capped_and_reset(self):
        for index in range(300):
            record_slow_query(f"/p{index}.html", 1.0, 0.5)
        assert len(slow_queries()) == 256
        reset_slow_queries()
        assert slow_queries() == []

    def test_report_folds_slow_queries(self):
        record_slow_query(
            "/slow.html", 2.5, 0.5, site="block.path", kind="deadline"
        )
        report = ResilienceReport().record_slow_queries()
        assert report.slow_queries
        text = "\n".join(report.summary_lines())
        assert "slow queries: 1" in text
        assert "/slow.html" in text
        payload = report.as_dict()
        assert payload["slow_queries"][0]["path"] == "/slow.html"

    def test_cli_stats_resilience_includes_slow_queries(self, tmp_path, capsys):
        from repro import cli

        record_slow_query("/cli.html", 3.0, 1.0, kind="watchdog")
        graph_file = tmp_path / "g.ddl"
        graph_file.write_text(ddl.dumps(_small_graph()))
        assert cli.main(["stats", str(graph_file), "--resilience"]) == 0
        out = capsys.readouterr().out
        assert "slow queries: 1" in out
        assert "/cli.html" in out
