"""Unit tests for DOT export (repro.graph.dot)."""

from repro.graph import Graph, Oid, image_file, string, to_dot


def _graph():
    graph = Graph()
    a = graph.add_node(Oid("a"))
    b = graph.add_node(Oid('b "quoted"'))
    graph.add_edge(a, "to", b)
    graph.add_edge(a, "title", string("A long value that should be truncated here"))
    graph.add_edge(b, "pic", image_file("x.gif"))
    graph.add_to_collection("Things", a)
    return graph


class TestToDot:
    def test_structure(self):
        dot = to_dot(_graph())
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"a" [shape=box];' in dot

    def test_edges_labeled(self):
        dot = to_dot(_graph())
        assert '[label="to"]' in dot
        assert '[label="title"]' in dot

    def test_atoms_typed_and_truncated(self):
        dot = to_dot(_graph(), max_value_length=10)
        assert "(image)" in dot
        assert "…" in dot

    def test_quotes_escaped(self):
        dot = to_dot(_graph())
        assert '\\"quoted\\"' in dot

    def test_shared_atoms_single_node(self):
        graph = Graph()
        a, b = graph.add_node(), graph.add_node()
        graph.add_edge(a, "x", string("same"))
        graph.add_edge(b, "y", string("same"))
        dot = to_dot(graph)
        assert dot.count("shape=ellipse") == 1

    def test_cluster_collections(self):
        dot = to_dot(_graph(), cluster_collections=True)
        assert "subgraph cluster_0" in dot
        assert 'label="Things"' in dot

    def test_empty_graph(self):
        assert "digraph" in to_dot(Graph())
