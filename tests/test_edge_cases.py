"""Edge-case tests across modules: coercing reverse-index lookups,
seeded evaluation, file-based wrapper constructors, and template-set
cloning in version derivation."""

import pytest

from repro.graph import AtomType, Graph, Oid, integer, string, url
from repro.struql import QueryEngine, evaluate, parse_query, query_bindings
from repro.template import TemplateSet
from repro.wrappers import (
    BibtexWrapper,
    DdlWrapper,
    StructuredFileWrapper,
    Table,
)


class TestReverseIndexCoercion:
    """When the optimizer binds the target first (y = const) and then
    evaluates the edge with only the target bound, the exact-match value
    index must be probed with every coercion spelling."""

    def _graph(self):
        graph = Graph()
        a, b, c = graph.add_node(), graph.add_node(), graph.add_node()
        graph.add_edge(a, "year", integer(1998))       # INTEGER
        graph.add_edge(b, "year", string("1998"))      # STRING spelling
        graph.add_edge(c, "year", integer(1997))
        graph.add_to_collection("Items", a)
        graph.add_to_collection("Items", b)
        graph.add_to_collection("Items", c)
        return graph

    def test_string_constant_finds_integer_values(self):
        graph = self._graph()
        rows = query_bindings('where x -> "year" -> y, y = "1998"', graph)
        assert len(rows) == 2  # both the INTEGER and STRING spellings

    def test_integer_constant_finds_string_values(self):
        graph = self._graph()
        rows = query_bindings('where x -> "year" -> y, y = 1998', graph)
        assert len(rows) == 2

    def test_indexed_path_agrees_with_scan(self):
        graph = self._graph()
        fast = query_bindings('where x -> "year" -> y, y = "1998"', graph)
        slow = query_bindings(
            'where x -> "year" -> y, y = "1998"', graph,
            optimize=False, use_indexes=False,
        )
        assert len(fast) == len(slow)

    def test_url_string_equivalence(self):
        graph = Graph()
        a = graph.add_node()
        graph.add_edge(a, "home", url("http://x.org"))
        rows = query_bindings('where p -> "home" -> h, h = "http://x.org"', graph)
        assert len(rows) == 1


class TestSeededEvaluation:
    """QueryEngine.bindings with non-trivial initial bindings (the
    incremental evaluator's main entry pattern)."""

    def test_seed_restricts_results(self, pub_graph):
        query = parse_query('where Publications(x), x -> "year" -> y')
        member = pub_graph.collection("Publications")[0]
        engine = QueryEngine(pub_graph)
        rows = engine.bindings(query.where, initial=[{"x": member}])
        assert all(row["x"] == member for row in rows)
        assert len(rows) == 1

    def test_multiple_seeds(self, pub_graph):
        query = parse_query('where Publications(x), x -> "year" -> y')
        members = pub_graph.collection("Publications")[:2]
        engine = QueryEngine(pub_graph)
        rows = engine.bindings(
            query.where, initial=[{"x": m} for m in members]
        )
        assert {row["x"] for row in rows} == set(members)

    def test_seed_with_unsatisfiable_binding(self, pub_graph):
        query = parse_query('where Publications(x), x -> "journal" -> j')
        # seed with a pub that has no journal
        no_journal = pub_graph.collection("Publications")[1]
        engine = QueryEngine(pub_graph)
        assert engine.bindings(query.where, initial=[{"x": no_journal}]) == []

    def test_seed_variable_not_in_conditions_is_kept(self, pub_graph):
        query = parse_query("where Publications(x)")
        engine = QueryEngine(pub_graph)
        rows = engine.bindings(query.where, initial=[{"extra": string("v")}])
        assert all("extra" in row for row in rows)


class TestFileConstructors:
    def test_bibtex_from_file(self, tmp_path):
        path = tmp_path / "x.bib"
        path.write_text("@article{k, title={T}, year=1998}")
        graph = BibtexWrapper.from_file(str(path)).wrap()
        assert graph.has_node(Oid("k"))

    def test_structured_from_file(self, tmp_path):
        path = tmp_path / "r.txt"
        path.write_text("%collection R\n\nname: one\n")
        graph = StructuredFileWrapper.from_file(str(path)).wrap()
        assert graph.collection_cardinality("R") == 1

    def test_ddl_from_file(self, tmp_path):
        path = tmp_path / "d.ddl"
        path.write_text('object a { name: "x" }')
        graph = DdlWrapper.from_file(str(path)).wrap()
        assert graph.has_node(Oid("a"))

    def test_table_from_csv_file(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,2\n")
        table = Table.from_csv_file(str(path))
        assert table.name == "t" and len(table.rows) == 1

    def test_template_add_file(self, tmp_path):
        path = tmp_path / "root.tmpl"
        path.write_text("<h1><SFMT title></h1>")
        templates = TemplateSet()
        template = templates.add_file(str(path))
        assert template.name == "root"
        assert templates.get("root") is not None


class TestVersionTemplateCloning:
    def test_clone_keeps_selection_rules(self):
        from repro.core import SiteDefinition, derive_version

        templates = TemplateSet()
        templates.add("a", "<p>a</p>")
        templates.add("b", "<p>b</p>")
        templates.for_object("Root()", "a")
        templates.for_collection("Things", "b")
        templates.set_default("a")
        base = SiteDefinition("base", "create Root()", templates)
        derived = derive_version(base, "derived", template_overrides={"b": "<p>B2</p>"})
        graph = Graph()
        root = graph.add_node(Oid("Root()"))
        thing = graph.add_node(Oid("t"))
        graph.add_to_collection("Things", thing)
        assert derived.templates.resolve(graph, root).name == "a"
        assert derived.templates.resolve(graph, thing).name == "b"
        assert derived.templates.get("b").source_text == "<p>B2</p>"
        # base untouched
        assert base.templates.get("b").source_text == "<p>b</p>"


class TestSelfLoopAndOddGraphs:
    def test_self_loop_edge(self):
        graph = Graph()
        a = graph.add_node()
        graph.add_edge(a, "self", a)
        graph.add_to_collection("C", a)
        rows = query_bindings('where C(x), x -> "self" -> x', graph)
        assert len(rows) == 1

    def test_self_loop_in_path(self):
        graph = Graph()
        a = graph.add_node()
        graph.add_edge(a, "self", a)
        graph.add_to_collection("C", a)
        rows = query_bindings('where C(x), x -> "self"."self"."self" -> y', graph)
        assert len(rows) == 1 and rows[0]["y"] == a

    def test_parallel_edges_different_labels(self):
        graph = Graph()
        a, b = graph.add_node(), graph.add_node()
        graph.add_edge(a, "x", b)
        graph.add_edge(a, "y", b)
        graph.add_to_collection("C", a)
        rows = query_bindings("where C(s), s -> l -> t", graph)
        assert {row["l"] for row in rows} == {"x", "y"}

    def test_construction_with_self_loop(self):
        graph = Graph()
        a = graph.add_node()
        graph.add_edge(a, "self", a)
        graph.add_to_collection("C", a)
        result = evaluate(
            'where C(x), x -> "self" -> x create P(x) link P(x) -> "loop" -> P(x)',
            graph,
        )
        node = next(iter(result.nodes()))
        assert result.attribute(node, "loop") == node
