"""Unit tests for the exception hierarchy and error reporting quality."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_strudel_error(self):
        for name in dir(errors):
            member = getattr(errors, name)
            if isinstance(member, type) and issubclass(member, Exception):
                if member is not errors.StrudelError:
                    assert issubclass(member, errors.StrudelError), name

    def test_struql_errors_grouped(self):
        assert issubclass(errors.StruqlSyntaxError, errors.StruqlError)
        assert issubclass(errors.StruqlSemanticError, errors.StruqlError)
        assert issubclass(errors.StruqlEvaluationError, errors.StruqlError)

    def test_template_errors_grouped(self):
        assert issubclass(errors.TemplateSyntaxError, errors.TemplateError)
        assert issubclass(errors.TemplateResolutionError, errors.TemplateError)

    def test_graph_errors_grouped(self):
        assert issubclass(errors.UnknownObjectError, errors.GraphError)
        assert issubclass(errors.ImmutableNodeError, errors.GraphError)


class TestMessages:
    def test_unknown_object_mentions_oid(self):
        error = errors.UnknownObjectError("pub7")
        assert "pub7" in str(error)
        assert error.oid == "pub7"

    def test_syntax_errors_carry_position(self):
        error = errors.StruqlSyntaxError("bad token", line=3, column=9)
        assert "line 3" in str(error) and "column 9" in str(error)
        assert error.line == 3

    def test_ddl_error_line(self):
        error = errors.DDLSyntaxError("oops", line=12)
        assert "line 12" in str(error)

    def test_template_error_line(self):
        error = errors.TemplateSyntaxError("bad tag", line=4)
        assert "line 4" in str(error)

    def test_constraint_violation_carries_witness(self):
        violation = errors.ConstraintViolation("forall X (...)", {"X": "p"})
        assert violation.witness == {"X": "p"}
        assert "counterexample" in str(violation)

    def test_constraint_violation_without_witness(self):
        violation = errors.ConstraintViolation("c")
        assert "counterexample" not in str(violation)


class TestCatchability:
    def test_one_catch_at_api_boundary(self):
        from repro.struql import parse

        with pytest.raises(errors.StrudelError):
            parse("??? not struql")

    def test_template_catch(self):
        from repro.template import parse_template

        with pytest.raises(errors.StrudelError):
            parse_template("<SFMT >")

    def test_wrapper_catch(self):
        from repro.wrappers import XmlWrapper

        with pytest.raises(errors.StrudelError):
            XmlWrapper("<unclosed>").wrap()
