"""Unit tests for EXPLAIN (repro.struql.explain) and the template linter
(repro.template.lint)."""

import pytest

from repro.core import SiteSchema
from repro.struql import parse
from repro.struql.explain import explain
from repro.template import TemplateSet
from repro.template.lint import LintFinding, TemplateLinter, lint_templates
from repro.workloads import (
    HOMEPAGE_QUERY,
    NEWS_SITE_QUERY,
    bibliography_graph,
    homepage_templates,
    news_templates,
)


@pytest.fixture(scope="module")
def graph():
    return bibliography_graph(30, seed=0)


class TestExplain:
    def test_selection_pushdown_visible(self, graph):
        plan = explain(
            'where Publications(x), x -> "year" -> y, y = "1998"', graph
        )
        lines = plan.splitlines()
        assert lines[0].startswith("plan for:")
        assert "bind y" in plan
        assert plan.index("bind y") < plan.index("membership check")

    def test_reverse_probe_access_path(self, graph):
        plan = explain('where x -> "year" -> y, y = "1998"', graph)
        assert 'reverse value-index probe "year"' in plan

    def test_collection_scan_shown(self, graph):
        plan = explain("where Publications(x), x -> l -> v", graph)
        assert "collection scan Publications" in plan
        assert "forward adjacency" in plan

    def test_negation_shown_as_antijoin(self, graph):
        plan = explain(
            "where Publications(x), not(isImageFile(x))", graph
        )
        assert "anti-join" in plan

    def test_naive_mode_shows_full_scans(self, graph):
        plan = explain(
            'where Publications(x), x -> "year" -> y', graph, use_indexes=False
        )
        assert "FULL SCAN" in plan

    def test_path_access_paths(self, graph):
        plan = explain("where Publications(x), x -> * -> y", graph)
        assert "path expansion" in plan

    def test_works_without_statistics(self):
        plan = explain('where C(x), x -> "a" -> y')
        assert "collection scan C" in plan

    def test_accepts_query_object(self, graph):
        program = parse('where Publications(x), x -> "year" -> y create P(x)')
        plan = explain(program.queries[0], graph)
        assert "plan for: query Q1" in plan


class TestLinter:
    def test_clean_templates_have_no_errors(self):
        schema = SiteSchema.from_program(parse(NEWS_SITE_QUERY))
        report = lint_templates(news_templates(), schema)
        assert report.ok
        assert "0 error(s)" in report.summary()

    def test_typo_detected(self):
        schema = SiteSchema.from_program(parse(HOMEPAGE_QUERY))
        templates = TemplateSet()
        templates.add("year", "<h1><SFMT Yearr></h1>")  # typo for Year
        templates.for_collection("YearPages", "year")
        report = lint_templates(templates, schema)
        assert not report.ok
        assert report.errors[0].kind == "unknown-attribute"
        assert "Yearr" in str(report.errors[0])

    def test_multi_step_expression_checked(self):
        schema = SiteSchema.from_program(parse(HOMEPAGE_QUERY))
        templates = TemplateSet()
        # YearPage -Paper-> PaperPresentation exists; -Nope-> does not
        good = TemplateSet()
        good.add("year", "<SFMT Paper.abstractPage>")
        good.for_collection("YearPages", "year")
        assert lint_templates(good, schema).ok
        bad = TemplateSet()
        bad.add("year", "<SFMT Nope.title>")
        bad.for_collection("YearPages", "year")
        assert not lint_templates(bad, schema).ok

    def test_arc_variable_pages_are_unknowable_not_errors(self):
        schema = SiteSchema.from_program(parse(NEWS_SITE_QUERY))
        templates = TemplateSet()
        templates.add("article", "<SFMT anything_at_all>")
        templates.for_collection("ArticlePages", "article")
        report = lint_templates(templates, schema)
        assert report.ok  # cannot prove it wrong
        assert any(f.kind == "unknowable" for f in report.findings)

    def test_loop_variables_tracked(self):
        schema = SiteSchema.from_program(parse(HOMEPAGE_QUERY))
        templates = TemplateSet()
        templates.add(
            "root", "<SFOR y IN YearPage><SFMT @y.Year></SFOR>"
        )
        templates.for_object("RootPage()", "root")
        assert lint_templates(templates, schema).ok
        bad = TemplateSet()
        bad.add("root", "<SFOR y IN YearPage><SFMT @y.Yearr></SFOR>")
        bad.for_object("RootPage()", "root")
        assert not lint_templates(bad, schema).ok

    def test_conditional_branches_linted(self):
        schema = SiteSchema.from_program(parse(HOMEPAGE_QUERY))
        templates = TemplateSet()
        templates.add("root", "<SIF YearPage>x<SELSE><SFMT Nope></SIF>")
        templates.for_object("RootPage()", "root")
        assert not lint_templates(templates, schema).ok

    def test_object_specific_assignment_resolved(self):
        schema = SiteSchema.from_program(parse(HOMEPAGE_QUERY))
        templates = TemplateSet()
        templates.add("r", "<SFMT Oops>")
        templates.for_object("RootPage()", "r")
        report = lint_templates(templates, schema)
        assert not report.ok
        assert "RootPage" in report.errors[0].detail

    def test_findings_deduplicated(self):
        schema = SiteSchema.from_program(parse(HOMEPAGE_QUERY))
        templates = TemplateSet()
        templates.add("r", "<SFMT Oops><SFMT Oops>")
        templates.for_object("RootPage()", "r")
        report = lint_templates(templates, schema)
        assert len(report.errors) == 1

    def test_homepage_templates_lint_clean(self):
        schema = SiteSchema.from_program(parse(HOMEPAGE_QUERY))
        assert lint_templates(homepage_templates(), schema).ok


class TestLinterCornerCases:
    def _schema(self):
        return SiteSchema.from_program(parse(HOMEPAGE_QUERY))

    def test_nested_loops_track_both_variables(self):
        schema = self._schema()
        good = TemplateSet()
        good.add(
            "root",
            "<SFOR y IN YearPage>"
            "<SFOR p IN @y.Paper><SFMT @p.abstractPage></SFOR>"
            "</SFOR>",
        )
        good.for_object("RootPage()", "root")
        assert lint_templates(good, schema).ok
        bad = TemplateSet()
        bad.add(
            "root",
            "<SFOR y IN YearPage>"
            "<SFOR p IN @y.Nope><SFMT @p.abstractPage></SFOR>"
            "</SFOR>",
        )
        bad.for_object("RootPage()", "root")
        report = lint_templates(bad, schema)
        assert not report.ok
        assert "Nope" in str(report.errors[0])

    def test_conditional_inside_loop_uses_loop_variable(self):
        schema = self._schema()
        good = TemplateSet()
        good.add(
            "root",
            "<SFOR y IN YearPage><SIF @y.Year><SFMT @y.Year></SIF></SFOR>",
        )
        good.for_object("RootPage()", "root")
        assert lint_templates(good, schema).ok
        bad = TemplateSet()
        bad.add(
            "root",
            "<SFOR y IN YearPage><SIF @y.Yearr>x</SIF></SFOR>",
        )
        bad.for_object("RootPage()", "root")
        assert not lint_templates(bad, schema).ok

    def test_arc_variable_multi_step_is_unknowable(self):
        # PaperPresentation carries arc-variable link clauses, so a
        # multi-step expression through it cannot be refuted
        schema = self._schema()
        templates = TemplateSet()
        templates.add("p", "<SFMT anything.whatever.deeper>")
        templates.for_collection("Presentations", "p")
        report = lint_templates(templates, schema)
        assert report.ok
        assert any(f.kind == "unknowable" for f in report.findings)

    def test_object_specific_assignment_overrides_collection(self):
        # YearPage() object template is linted against YearPage's own
        # edges even when the collection has a different template
        schema = self._schema()
        templates = TemplateSet()
        templates.add("generic", "<SFMT Year>")
        templates.for_collection("YearPages", "generic")
        templates.add("special", "<SFMT Yearr>")
        templates.for_object("YearPage()", "special")
        report = lint_templates(templates, schema)
        assert not report.ok
        assert report.errors[0].template == "special"

    def test_findings_carry_line_numbers(self):
        schema = self._schema()
        templates = TemplateSet()
        templates.add("r", "<html>\n<p>fine</p>\n<SFMT Oops>\n</html>")
        templates.for_object("RootPage()", "r")
        report = lint_templates(templates, schema)
        assert not report.ok
        finding = report.errors[0]
        assert finding.line == 3
        assert ":3:" in str(finding)
