"""Final corner coverage: explain access-path variants, coercion probes
over file-flavoured atoms, repository path safety, skolem arg mixing."""

import pytest

from repro.graph import Graph, Oid, integer, string, text_file
from repro.repository import Repository
from repro.struql import evaluate, query_bindings
from repro.struql.explain import explain


class TestExplainAccessPaths:
    def test_edge_existence_check(self, pub_graph):
        plan = explain(
            'where Publications(x), Publications(y), x -> "year" -> y',
            pub_graph,
        )
        assert "edge existence check" in plan

    def test_label_extent_scan(self, pub_graph):
        plan = explain('where x -> "year" -> y', pub_graph)
        assert "label-extent scan" in plan

    def test_all_edges_scan_for_arc_variable(self, pub_graph):
        plan = explain("where x -> l -> y", pub_graph)
        assert "all-edges scan" in plan

    def test_reverse_path_expansion(self, pub_graph):
        plan = explain(
            'where Publications(y), x -> "a"."b" -> y', pub_graph
        )
        assert "reverse path expansion" in plan

    def test_full_path_enumeration(self, pub_graph):
        plan = explain("where x -> * -> y", pub_graph)
        assert "full path enumeration" in plan

    def test_path_check_when_both_bound(self, pub_graph):
        plan = explain(
            "where Publications(x), Publications(y), x -> * -> y", pub_graph
        )
        assert "path check" in plan


class TestCoercionProbesFileAtoms:
    def test_string_constant_finds_text_file_value(self):
        graph = Graph()
        oid = graph.add_node()
        graph.add_edge(oid, "body", text_file("hello world"))
        rows = query_bindings('where x -> "body" -> b, b = "hello world"', graph)
        assert len(rows) == 1

    def test_scan_agrees(self):
        graph = Graph()
        oid = graph.add_node()
        graph.add_edge(oid, "body", text_file("hello"))
        fast = query_bindings('where x -> "body" -> b, b = "hello"', graph)
        slow = query_bindings(
            'where x -> "body" -> b, b = "hello"', graph,
            optimize=False, use_indexes=False,
        )
        assert len(fast) == len(slow) == 1


class TestRepositoryPathSafety:
    def test_separator_in_name_sanitized(self, tmp_path):
        repo = Repository(str(tmp_path))
        graph = Graph()
        graph.add_node()
        repo.store("weird/name", graph)
        import os

        files = os.listdir(str(tmp_path))
        assert all(os.sep not in f for f in files)
        assert "weird/name" in repo  # cached

    def test_fetch_uses_cache(self, tmp_path):
        repo = Repository(str(tmp_path))
        graph = Graph()
        graph.add_node()
        repo.store("g", graph)
        assert repo.fetch("g") is graph  # identity: cached, not reloaded


class TestSkolemArgMixing:
    def test_mixed_oid_and_atom_args(self):
        graph = Graph()
        data_node = graph.add_node(Oid("d1"))
        one = graph.skolem("F", data_node, 1998, "text")
        two = graph.skolem("F", data_node, 1998, "text")
        other = graph.skolem("F", data_node, 1997, "text")
        assert one == two != other
        assert "d1" in one.name and "1998" in one.name

    def test_skolem_over_labels_in_query(self, pub_graph):
        result = evaluate(
            "where Publications(x), x -> l -> v create AttrPage(x, l)",
            pub_graph,
        )
        names = {o.name for o in result.nodes()}
        assert any("'title'" in n for n in names)
        # one node per (pub, label), not per (pub, label, value)
        title_nodes = [n for n in names if "'title'" in n]
        assert len(title_nodes) == 3


class TestEvaluateVariants:
    def test_evaluate_accepts_query_object(self, pub_graph):
        from repro.struql import parse_query

        query = parse_query("where Publications(x) create P(x)")
        result = evaluate(query, pub_graph)
        assert result.node_count == 3

    def test_metrics_threading(self, pub_graph):
        from repro.struql import Metrics

        metrics = Metrics()
        evaluate(
            "where Publications(x) create P(x) collect O(P(x))",
            pub_graph,
            metrics=metrics,
        )
        assert metrics.nodes_created == 3
        assert metrics.bindings_produced >= 3
