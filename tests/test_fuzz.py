"""Fuzz properties: parsers must reject garbage with *library* errors,
never with raw Python exceptions -- the contract callers of a database
system rely on."""

import string as stringmod

from hypothesis import given, settings, strategies as st

from repro.errors import StrudelError
from repro.repository import ddl
from repro.struql import parse
from repro.template import parse_template
from repro.core import parse_constraint

_soup = st.text(
    alphabet=stringmod.ascii_letters + stringmod.digits + ' ->(){}*.|,"=<>!\n\t_#/@',
    max_size=120,
)


@given(_soup)
@settings(max_examples=150, deadline=None)
def test_struql_parser_never_crashes(text):
    try:
        parse(text)
    except StrudelError:
        pass  # rejection with a library error is correct


@given(_soup)
@settings(max_examples=150, deadline=None)
def test_template_parser_never_crashes(text):
    try:
        parse_template(text)
    except StrudelError:
        pass


@given(_soup)
@settings(max_examples=150, deadline=None)
def test_ddl_parser_never_crashes(text):
    try:
        ddl.loads(text)
    except StrudelError:
        pass


@given(_soup)
@settings(max_examples=150, deadline=None)
def test_constraint_parser_never_crashes(text):
    try:
        parse_constraint(text)
    except StrudelError:
        pass


@given(st.text(max_size=200))
@settings(max_examples=100, deadline=None)
def test_bibtex_parser_never_crashes(text):
    from repro.wrappers import parse_bibtex

    try:
        parse_bibtex(text)
    except StrudelError:
        pass
