"""Property-based tests across the whole pipeline: for arbitrary family
sites, generation must produce a closed, well-formed page set, and
dynamic evaluation must agree with static evaluation."""

import re

from hypothesis import given, settings, strategies as st

from repro.baselines import family_graph, run_strudel, strudel_query, strudel_templates
from repro.core import DynamicSite, NodeInstance
from repro.graph import Oid
from repro.struql import evaluate, parse
from repro.template import generate_site

_sizes = st.integers(1, 25)
_features = st.integers(0, 4)
_seeds = st.integers(0, 10)


@given(_sizes, _features, _seeds)
@settings(max_examples=25, deadline=None)
def test_generated_sites_have_no_dangling_links(items, features, seed):
    graph = family_graph(items, features, seed=seed)
    site_graph = evaluate(parse(strudel_query(features)), graph)
    site = generate_site(site_graph, strudel_templates(features), ["RootPage()"])
    assert site.dangling_links() == []
    if features:
        assert site.page_count >= 1 + items  # root + one page per item
    else:
        # with no grouping features nothing links to the item pages, and
        # generation is reachability-driven: only the root is emitted
        assert site.page_count == 1


@given(_sizes, _features, _seeds)
@settings(max_examples=25, deadline=None)
def test_every_page_is_reachable_from_index(items, features, seed):
    """Connectedness: following hrefs from index.html covers every page
    (the family site links root -> groups -> items; with zero features
    only the item pages hang off nothing, so skip that degenerate case)."""
    if features == 0:
        return
    graph = family_graph(items, features, seed=seed)
    site_graph = evaluate(parse(strudel_query(features)), graph)
    site = generate_site(site_graph, strudel_templates(features), ["RootPage()"])
    seen = {"index.html"}
    frontier = ["index.html"]
    while frontier:
        page = frontier.pop()
        for href in re.findall(r'href="([^"]+)"', site.pages[page]):
            if href.endswith(".html") and href not in seen:
                seen.add(href)
                frontier.append(href)
    assert seen == set(site.pages)


@given(_sizes, st.integers(1, 3), _seeds)
@settings(max_examples=20, deadline=None)
def test_dynamic_expansion_equals_static_site(items, features, seed):
    graph = family_graph(items, features, seed=seed)
    program = parse(strudel_query(features))
    static = evaluate(program, graph)
    dynamic = DynamicSite(program, graph)

    def key(target):
        if isinstance(target, NodeInstance):
            return target.oid().name
        if isinstance(target, Oid):
            return target.name
        return repr(target)

    for function in dynamic.schema.functions:
        for instance in dynamic.instances_of(function):
            oid = instance.oid()
            assert static.has_node(oid)
            static_edges = sorted((l, key(t)) for l, t in static.out_edges(oid))
            dynamic_edges = sorted((l, key(t)) for l, t in dynamic.expand(instance))
            assert static_edges == dynamic_edges


@given(_sizes, st.integers(1, 3), _seeds)
@settings(max_examples=15, deadline=None)
def test_atom_text_is_escaped_in_pages(items, features, seed):
    """No unescaped markup can leak from atom payloads: the family data
    contains no angle brackets, so any tag in output must come from a
    template literal -- all of which are in a fixed whitelist."""
    graph = family_graph(items, features, seed=seed)
    pages = run_strudel(graph, features)
    allowed = re.compile(
        r"</?(html|head|title|body|h1|h2|p|ul|li|a)\b[^>]*>", re.IGNORECASE
    )
    for content in pages.values():
        stripped = allowed.sub("", content)
        assert "<" not in stripped, stripped
