"""Unit tests for the HTML generator (repro.template.generator)."""

import os

import pytest

from repro.errors import TemplateResolutionError
from repro.graph import Graph, Oid, string
from repro.template import (
    TEMPLATE_ATTRIBUTE,
    HtmlGenerator,
    TemplateSet,
    generate_site,
)


@pytest.fixture
def site():
    graph = Graph()
    root = graph.add_node(Oid("Root()"))
    for index in range(3):
        child = graph.add_node(Oid(f"Item({index})"))
        graph.add_edge(child, "title", string(f"Item number {index}"))
        graph.add_edge(root, "item", child)
        graph.add_to_collection("Items", child)
    templates = TemplateSet()
    templates.add("root", "<h1>Root</h1><SFMT item UL>")
    templates.add("item", "<h2><SFMT title></h2>")
    templates.for_object("Root()", "root")
    templates.for_collection("Items", "item")
    return graph, templates, root


class TestTemplateSelection:
    def test_object_specific_wins(self, site):
        graph, templates, root = site
        templates.add("special", "special")
        templates.for_object("Item(0)", "special")
        assert templates.resolve(graph, Oid("Item(0)")).name == "special"
        assert templates.resolve(graph, Oid("Item(1)")).name == "item"

    def test_html_template_attribute_second(self, site):
        graph, templates, root = site
        templates.add("attrib", "via attribute")
        graph.add_edge(Oid("Item(1)"), TEMPLATE_ATTRIBUTE, string("attrib"))
        assert templates.resolve(graph, Oid("Item(1)")).name == "attrib"

    def test_collection_template_third(self, site):
        graph, templates, root = site
        assert templates.resolve(graph, Oid("Item(2)")).name == "item"

    def test_default_last(self, site):
        graph, templates, root = site
        orphan = graph.add_node(Oid("Orphan()"))
        assert templates.resolve(graph, orphan) is None
        templates.add("fallback", "x")
        templates.set_default("fallback")
        assert templates.resolve(graph, orphan).name == "fallback"

    def test_registering_unknown_template_fails(self, site):
        _, templates, _ = site
        with pytest.raises(TemplateResolutionError):
            templates.for_collection("Items", "ghost")

    def test_template_counting(self, site):
        _, templates, _ = site
        assert templates.template_count() == 2
        assert templates.total_source_lines() == 2


class TestGeneration:
    def test_pages_generated_transitively(self, site):
        graph, templates, root = site
        generated = generate_site(graph, templates, ["Root()"])
        assert generated.page_count == 4  # root + 3 items

    def test_first_root_is_index(self, site):
        graph, templates, root = site
        generated = generate_site(graph, templates, ["Root()"])
        assert "index.html" in generated.pages
        assert "<h1>Root</h1>" in generated.pages["index.html"]

    def test_links_point_to_real_pages(self, site):
        graph, templates, root = site
        generated = generate_site(graph, templates, ["Root()"])
        assert generated.dangling_links() == []
        assert len(generated.internal_hrefs()) == 3

    def test_filenames_sanitized(self, site):
        graph, templates, root = site
        generated = generate_site(graph, templates, ["Root()"])
        for filename in generated.pages:
            assert "(" not in filename and ")" not in filename

    def test_collection_as_root(self, site):
        graph, templates, root = site
        generated = generate_site(graph, templates, ["Items"])
        assert generated.page_count == 3

    def test_oid_as_root(self, site):
        graph, templates, root = site
        generated = generate_site(graph, templates, [root])
        assert generated.page_count == 4

    def test_bare_skolem_name_as_root(self, site):
        graph, templates, root = site
        generated = generate_site(graph, templates, ["Root"])
        assert generated.page_count == 4

    def test_unknown_root_raises(self, site):
        graph, templates, _ = site
        with pytest.raises(TemplateResolutionError):
            generate_site(graph, templates, ["Nowhere"])

    def test_root_without_template_raises(self, site):
        graph, templates, _ = site
        orphan = graph.add_node(Oid("Orphan()"))
        with pytest.raises(TemplateResolutionError):
            generate_site(graph, templates, [orphan])

    def test_object_without_template_rendered_as_text(self, site):
        graph, templates, root = site
        orphan = graph.add_node(Oid("Orphan()"))
        graph.add_edge(orphan, "title", string("Plain"))
        graph.add_edge(root, "item", orphan)
        generated = generate_site(graph, templates, ["Root()"])
        assert ">Plain<" in generated.pages["index.html"].replace("<li>Plain</li>", ">Plain<")
        assert generated.page_count == 4  # orphan is not a page

    def test_page_for_accessor(self, site):
        graph, templates, root = site
        generated = generate_site(graph, templates, ["Root()"])
        assert "<h1>Root</h1>" in generated.page_for(root)
        assert generated.page_for(Oid("ghost")) is None

    def test_write(self, site, tmp_path):
        graph, templates, root = site
        generated = generate_site(graph, templates, ["Root()"])
        written = generated.write(str(tmp_path))
        assert len(written) == 4
        assert os.path.exists(os.path.join(str(tmp_path), "index.html"))

    def test_filename_collisions_disambiguated(self):
        graph = Graph()
        a = graph.add_node(Oid("P(x)"))
        b = graph.add_node(Oid("P(x )"))  # sanitizes to the same stem
        templates = TemplateSet()
        templates.add("t", "x")
        templates.for_object("P(x)", "t")
        templates.for_object("P(x )", "t")
        generator = HtmlGenerator(graph, templates)
        generated = generator.generate([a, b])
        assert len(generated.pages) == 2

    def test_embedded_objects_are_not_pages(self):
        graph = Graph()
        root = graph.add_node(Oid("Root()"))
        part = graph.add_node(Oid("Part()"))
        graph.add_edge(part, "title", string("part"))
        graph.add_edge(root, "part", part)
        graph.add_to_collection("Parts", part)
        templates = TemplateSet()
        templates.add("root", "<SFMT part EMBED>")
        templates.add("part", "[<SFMT title>]")
        templates.for_object("Root()", "root")
        templates.for_collection("Parts", "part")
        generated = generate_site(graph, templates, ["Root()"])
        assert generated.page_count == 1
        assert generated.pages["index.html"] == "[part]"
