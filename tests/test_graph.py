"""Unit tests for the labeled directed graph (repro.graph.graph)."""

import pytest

from repro.errors import GraphError, UnknownObjectError
from repro.graph import Atom, Graph, Oid, integer, string


@pytest.fixture
def graph():
    return Graph("t")


class TestNodes:
    def test_add_anonymous(self, graph):
        oid = graph.add_node()
        assert graph.has_node(oid)
        assert graph.node_count == 1

    def test_add_named(self, graph):
        oid = graph.add_node(Oid("pub1"))
        assert oid.name == "pub1"

    def test_readd_is_noop(self, graph):
        oid = graph.add_node(Oid("x"))
        graph.add_edge(oid, "a", string("v"))
        graph.add_node(Oid("x"))
        assert graph.edge_count == 1

    def test_remove_node_removes_incident_edges(self, graph):
        a, b = graph.add_node(), graph.add_node()
        graph.add_edge(a, "to", b)
        graph.add_edge(b, "back", a)
        graph.remove_node(b)
        assert graph.edge_count == 0
        assert not graph.has_node(b)
        assert list(graph.out_edges(a)) == []

    def test_remove_node_drops_collection_membership(self, graph):
        oid = graph.add_node()
        graph.add_to_collection("C", oid)
        graph.remove_node(oid)
        assert graph.collection("C") == []

    def test_remove_unknown_raises(self, graph):
        with pytest.raises(UnknownObjectError):
            graph.remove_node(Oid("ghost"))

    def test_skolem_creates_node(self, graph):
        oid = graph.skolem("YearPage", 1998)
        assert graph.has_node(oid)
        assert oid.name == "YearPage(1998)"

    def test_skolem_deterministic(self, graph):
        assert graph.skolem("F", "a") == graph.skolem("F", "a")
        assert graph.node_count == 1


class TestEdges:
    def test_add_edge_atom_target(self, graph):
        oid = graph.add_node()
        stored = graph.add_edge(oid, "year", 1998)
        assert isinstance(stored, Atom)
        assert graph.edge_count == 1

    def test_add_edge_node_target(self, graph):
        a, b = graph.add_node(), graph.add_node()
        graph.add_edge(a, "to", b)
        assert graph.has_edge(a, "to", b)

    def test_duplicate_edge_ignored(self, graph):
        oid = graph.add_node()
        graph.add_edge(oid, "a", string("v"))
        graph.add_edge(oid, "a", string("v"))
        assert graph.edge_count == 1

    def test_multivalued_attribute(self, graph):
        oid = graph.add_node()
        graph.add_edge(oid, "author", string("Mary"))
        graph.add_edge(oid, "author", string("Dan"))
        assert [str(t) for t in graph.targets(oid, "author")] == ["Mary", "Dan"]

    def test_unknown_source_raises(self, graph):
        with pytest.raises(UnknownObjectError):
            graph.add_edge(Oid("ghost"), "a", string("v"))

    def test_unknown_oid_target_raises(self, graph):
        oid = graph.add_node()
        with pytest.raises(UnknownObjectError):
            graph.add_edge(oid, "to", Oid("ghost"))

    def test_empty_label_rejected(self, graph):
        oid = graph.add_node()
        with pytest.raises(GraphError):
            graph.add_edge(oid, "", string("v"))

    def test_remove_edge(self, graph):
        oid = graph.add_node()
        target = graph.add_edge(oid, "a", string("v"))
        graph.remove_edge(oid, "a", target)
        assert graph.edge_count == 0
        assert not graph.has_edge(oid, "a", target)
        assert "a" not in graph.labels()

    def test_remove_missing_edge_raises(self, graph):
        oid = graph.add_node()
        with pytest.raises(GraphError):
            graph.remove_edge(oid, "a", string("v"))

    def test_edges_iteration(self, graph):
        a, b = graph.add_node(), graph.add_node()
        graph.add_edge(a, "x", b)
        graph.add_edge(a, "y", string("v"))
        assert len(list(graph.edges())) == 2


class TestNavigation:
    def test_attribute_first_value(self, graph):
        oid = graph.add_node()
        graph.add_edge(oid, "a", string("first"))
        graph.add_edge(oid, "a", string("second"))
        assert str(graph.attribute(oid, "a")) == "first"

    def test_attribute_missing_is_none(self, graph):
        oid = graph.add_node()
        assert graph.attribute(oid, "a") is None

    def test_labels_of(self, graph):
        oid = graph.add_node()
        graph.add_edge(oid, "b", string("1"))
        graph.add_edge(oid, "a", string("2"))
        assert graph.labels_of(oid) == ["b", "a"]  # insertion order

    def test_in_edges(self, graph):
        a, b = graph.add_node(), graph.add_node()
        graph.add_edge(a, "to", b)
        assert list(graph.in_edges(b)) == [(a, "to")]

    def test_value_index(self, graph):
        a, b = graph.add_node(), graph.add_node()
        graph.add_edge(a, "year", integer(1998))
        graph.add_edge(b, "published", integer(1998))
        sources = set(graph.sources_of_value(integer(1998)))
        assert sources == {(a, "year"), (b, "published")}

    def test_label_extent(self, graph):
        a, b = graph.add_node(), graph.add_node()
        graph.add_edge(a, "to", b)
        graph.add_edge(b, "to", a)
        assert set(graph.edges_with_label("to")) == {(a, b), (b, a)}
        assert graph.label_cardinality("to") == 2
        assert graph.label_cardinality("missing") == 0

    def test_atoms_iteration(self, graph):
        oid = graph.add_node()
        graph.add_edge(oid, "a", string("x"))
        graph.add_edge(oid, "b", string("x"))  # same atom twice
        assert len(list(graph.atoms())) == 1

    def test_out_edges_of_unknown_raises(self, graph):
        with pytest.raises(UnknownObjectError):
            list(graph.out_edges(Oid("ghost")))


class TestReachable:
    def test_includes_start(self, chain_graph):
        graph, (a, b, c) = chain_graph
        assert a in graph.reachable(a)

    def test_follows_edges(self, chain_graph):
        graph, (a, b, c) = chain_graph
        assert set(graph.reachable(a)) == {a, b, c}

    def test_label_restriction(self, chain_graph):
        graph, (a, b, c) = chain_graph
        reached = graph.reachable(a, via={"next"})
        assert set(reached) == {a, b, c}
        assert set(graph.reachable(a, via={"figure"})) == {a}

    def test_atoms_included_on_request(self, chain_graph):
        graph, (a, b, c) = chain_graph
        with_atoms = graph.reachable(a, include_atoms=True)
        assert any(isinstance(t, Atom) for t in with_atoms)

    def test_cycle_terminates(self, graph):
        a, b = graph.add_node(), graph.add_node()
        graph.add_edge(a, "to", b)
        graph.add_edge(b, "to", a)
        assert set(graph.reachable(a)) == {a, b}


class TestCollections:
    def test_create_and_membership(self, graph):
        oid = graph.add_node()
        graph.add_to_collection("C", oid)
        assert graph.in_collection("C", oid)
        assert graph.collection("C") == [oid]

    def test_multiple_collections_per_object(self, graph):
        oid = graph.add_node()
        graph.add_to_collection("A", oid)
        graph.add_to_collection("B", oid)
        assert set(graph.collections_of(oid)) == {"A", "B"}

    def test_unknown_member_raises(self, graph):
        with pytest.raises(UnknownObjectError):
            graph.add_to_collection("C", Oid("ghost"))

    def test_remove_from_collection(self, graph):
        oid = graph.add_node()
        graph.add_to_collection("C", oid)
        graph.remove_from_collection("C", oid)
        assert graph.collection("C") == []

    def test_remove_nonmember_raises(self, graph):
        oid = graph.add_node()
        with pytest.raises(GraphError):
            graph.remove_from_collection("C", oid)

    def test_missing_collection_is_empty(self, graph):
        assert graph.collection("Nope") == []
        assert not graph.has_collection("Nope")

    def test_cardinality(self, graph):
        for _ in range(3):
            graph.add_to_collection("C", graph.add_node())
        assert graph.collection_cardinality("C") == 3


class TestCopyAndMerge:
    def test_copy_is_deep(self, pub_graph):
        clone = pub_graph.copy()
        original_edges = pub_graph.edge_count
        member = clone.collection("Publications")[0]
        clone.add_edge(member, "extra", string("x"))
        assert pub_graph.edge_count == original_edges

    def test_copy_preserves_everything(self, pub_graph):
        clone = pub_graph.copy()
        assert clone.stats() == pub_graph.stats()
        assert clone.collection_names() == pub_graph.collection_names()

    def test_copy_preserves_skolems(self):
        graph = Graph()
        graph.skolem("F", 1)
        clone = graph.copy()
        assert clone.skolems.lookup("F", (integer(1),)) is not None

    def test_merge_renames_clashing_anonymous_oids(self):
        left, right = Graph(), Graph()
        l1 = left.add_node()
        r1 = right.add_node()  # both are &1
        right.add_edge(r1, "a", string("v"))
        rename = left.merge(right)
        assert left.node_count == 2
        assert rename[r1] != l1

    def test_merge_keeps_named_oids(self):
        left, right = Graph(), Graph()
        right.add_node(Oid("pub1"))
        left.merge(right)
        assert left.has_node(Oid("pub1"))

    def test_merge_prefixes_collections(self):
        left, right = Graph(), Graph()
        oid = right.add_node()
        right.add_to_collection("People", oid)
        left.merge(right, collection_prefix="src.")
        assert left.has_collection("src.People")

    def test_merge_carries_edges(self):
        left, right = Graph(), Graph()
        a, b = right.add_node(), right.add_node()
        right.add_edge(a, "to", b)
        rename = left.merge(right)
        assert left.has_edge(rename[a], "to", rename[b])

    def test_merged_allocator_does_not_collide(self):
        left, right = Graph(), Graph()
        right.add_node()
        left.merge(right)
        fresh = left.add_node()
        assert left.node_count == 2  # no silent reuse


class TestStats:
    def test_stats_shape(self, pub_graph):
        stats = pub_graph.stats()
        assert stats["nodes"] == 3
        assert stats["collections"] == 1
        assert stats["edges"] > 0
        assert stats["labels"] >= 5

    def test_repr(self, pub_graph):
        assert "pubs" in repr(pub_graph)
