"""Unit tests for a-posteriori schema extraction (repro.graph.schema)."""

import pytest

from repro.graph import Graph, integer, string, summarize


@pytest.fixture
def irregular_graph():
    graph = Graph()
    full = graph.add_node()
    graph.add_edge(full, "title", string("t1"))
    graph.add_edge(full, "year", integer(1998))
    graph.add_edge(full, "author", string("a"))
    graph.add_edge(full, "author", string("b"))
    partial = graph.add_node()
    graph.add_edge(partial, "title", string("t2"))
    graph.add_to_collection("Pubs", full)
    graph.add_to_collection("Pubs", partial)
    return graph


class TestSummarize:
    def test_global_labels(self, irregular_graph):
        schema = summarize(irregular_graph)
        assert set(schema.labels) == {"title", "year", "author"}

    def test_collection_names(self, irregular_graph):
        assert summarize(irregular_graph).collection_names == ["Pubs"]

    def test_collection_size(self, irregular_graph):
        assert summarize(irregular_graph).collection_schema("Pubs").size == 2

    def test_attribute_presence_counts(self, irregular_graph):
        pubs = summarize(irregular_graph).collection_schema("Pubs")
        assert pubs.attributes["title"].present_on == 2
        assert pubs.attributes["year"].present_on == 1

    def test_multivalued_detection(self, irregular_graph):
        pubs = summarize(irregular_graph).collection_schema("Pubs")
        assert pubs.attributes["author"].is_multivalued
        assert not pubs.attributes["title"].is_multivalued

    def test_irregular_attributes(self, irregular_graph):
        pubs = summarize(irregular_graph).collection_schema("Pubs")
        assert pubs.irregular_attributes == ["author", "year"]

    def test_null_fraction(self, irregular_graph):
        pubs = summarize(irregular_graph).collection_schema("Pubs")
        # 2 objects x 3 columns = 6 cells; filled: title(2) + year(1) + author(1)
        assert pubs.null_fraction == pytest.approx(1 - 4 / 6)

    def test_regular_collection_has_zero_nulls(self):
        graph = Graph()
        for index in range(3):
            oid = graph.add_node()
            graph.add_edge(oid, "name", string(f"n{index}"))
            graph.add_to_collection("C", oid)
        assert summarize(graph).collection_schema("C").null_fraction == 0.0

    def test_type_heterogeneity(self):
        graph = Graph()
        a, b = graph.add_node(), graph.add_node()
        graph.add_edge(a, "addr", string("street"))
        structured = graph.add_node()
        graph.add_edge(b, "addr", structured)
        graph.add_to_collection("C", a)
        graph.add_to_collection("C", b)
        schema = summarize(graph).collection_schema("C")
        assert schema.attributes["addr"].is_type_heterogeneous

    def test_overall_null_fraction_weighted(self, irregular_graph):
        schema = summarize(irregular_graph)
        assert 0.0 < schema.overall_null_fraction < 1.0

    def test_empty_graph(self):
        schema = summarize(Graph())
        assert schema.labels == []
        assert schema.overall_null_fraction == 0.0
