"""Unit tests for dynamic/incremental site evaluation (repro.core.incremental)."""

import random

import pytest

from repro.core import BrowseSession, DynamicSite, NodeInstance
from repro.errors import SiteDefinitionError
from repro.graph import Atom, Oid
from repro.struql import evaluate, parse
from repro.workloads import HOMEPAGE_QUERY, NEWS_SITE_QUERY, bibliography_graph, news_graph


@pytest.fixture(scope="module")
def homepage():
    data = bibliography_graph(12, seed=9)
    program = parse(HOMEPAGE_QUERY)
    return data, program, evaluate(program, data)


def _edge_key(target):
    if isinstance(target, NodeInstance):
        return target.oid().name
    if isinstance(target, Oid):
        return target.name
    return repr(target)


class TestEquivalence:
    def test_every_instance_matches_static_site(self, homepage):
        data, program, site_graph = homepage
        dynamic = DynamicSite(program, data)
        total = 0
        for function in dynamic.schema.functions:
            for instance in dynamic.instances_of(function):
                total += 1
                oid = instance.oid()
                assert site_graph.has_node(oid)
                static = sorted(
                    (label, _edge_key(t)) for label, t in site_graph.out_edges(oid)
                )
                expanded = sorted(
                    (label, _edge_key(t)) for label, t in dynamic.expand(instance)
                )
                assert static == expanded, f"mismatch at {instance}"
        assert total == site_graph.node_count

    def test_news_site_equivalence(self):
        data = news_graph(40, seed=3)
        program = parse(NEWS_SITE_QUERY)
        site_graph = evaluate(program, data)
        dynamic = DynamicSite(program, data)
        front = NodeInstance("FrontPage", ())
        static = sorted(
            (label, _edge_key(t))
            for label, t in site_graph.out_edges(Oid("FrontPage()"))
        )
        expanded = sorted((label, _edge_key(t)) for label, t in dynamic.expand(front))
        assert static == expanded


class TestInstances:
    def test_roots_are_zero_arg_functions(self, homepage):
        data, program, _ = homepage
        dynamic = DynamicSite(program, data)
        roots = {str(r) for r in dynamic.roots()}
        assert roots == {"RootPage()", "AbstractsPage()"}

    def test_instances_of_parametric_function(self, homepage):
        data, program, site_graph = homepage
        dynamic = DynamicSite(program, data)
        year_pages = dynamic.instances_of("YearPage")
        static_years = [o for o in site_graph.nodes() if o.name.startswith("YearPage(")]
        assert len(year_pages) == len(static_years)

    def test_unknown_function_raises(self, homepage):
        data, program, _ = homepage
        with pytest.raises(SiteDefinitionError):
            DynamicSite(program, data).instances_of("Nonsense")


class TestCaching:
    def test_cache_hits_on_revisit(self, homepage):
        data, program, _ = homepage
        dynamic = DynamicSite(program, data, cache=True)
        instance = dynamic.roots()[0]
        dynamic.expand(instance)
        before = dynamic.metrics.queries_evaluated
        dynamic.expand(instance)
        assert dynamic.metrics.queries_evaluated == before
        assert dynamic.metrics.cache_hits > 0

    def test_no_cache_reevaluates(self, homepage):
        data, program, _ = homepage
        dynamic = DynamicSite(program, data, cache=False)
        instance = dynamic.roots()[0]
        dynamic.expand(instance)
        before = dynamic.metrics.queries_evaluated
        dynamic.expand(instance)
        assert dynamic.metrics.queries_evaluated > before

    def test_lookahead_prefetches(self, homepage):
        data, program, _ = homepage
        dynamic = DynamicSite(program, data, cache=True, lookahead=True)
        session = BrowseSession(dynamic)
        session.visit(NodeInstance("RootPage", ()))
        assert dynamic.metrics.lookahead_prefetches > 0

    def test_lookahead_makes_next_click_cached(self, homepage):
        data, program, _ = homepage
        dynamic = DynamicSite(program, data, cache=True, lookahead=True)
        session = BrowseSession(dynamic)
        edges = session.visit(NodeInstance("RootPage", ()))
        target = next(t for _, t in edges if isinstance(t, NodeInstance))
        hits_before = dynamic.metrics.cache_hits
        session.visit(target)
        assert dynamic.metrics.cache_hits > hits_before


class TestBrowseSession:
    def test_walk_trajectory(self, homepage):
        data, program, _ = homepage
        dynamic = DynamicSite(program, data)
        session = BrowseSession(dynamic)
        rng = random.Random(0)
        trajectory = session.walk(
            NodeInstance("RootPage", ()), lambda cands: rng.choice(cands), clicks=4
        )
        assert len(trajectory) >= 2
        assert trajectory[0].function == "RootPage"
        assert session.history

    def test_walk_stops_at_dead_end(self, homepage):
        data, program, _ = homepage
        dynamic = DynamicSite(program, data)
        session = BrowseSession(dynamic)
        # abstract pages have no NodeInstance successors
        abstracts = dynamic.instances_of("AbstractPage")
        trajectory = session.walk(abstracts[0], lambda cands: cands[0], clicks=5)
        assert trajectory == [abstracts[0]]

    def test_expansion_values_render_atoms(self, homepage):
        data, program, _ = homepage
        dynamic = DynamicSite(program, data)
        presentation = dynamic.instances_of("PaperPresentation")[0]
        edges = dynamic.expand(presentation)
        assert any(isinstance(t, Atom) for _, t in edges)
