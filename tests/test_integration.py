"""Integration tests: full pipelines across all subsystems, including the
example scripts run as functions."""

import importlib.util
import os
import sys

import pytest

from repro import (
    HtmlSiteWrapper,
    Repository,
    SiteBuilder,
    SiteDefinition,
    derive_version,
    diff_definitions,
)
from repro.core import BrowseSession, DynamicSite, NodeInstance, check
from repro.repository import ddl
from repro.struql import evaluate, parse
from repro.template import generate_site
from repro.workloads import (
    HOMEPAGE_QUERY,
    NEWS_SITE_QUERY,
    SPORTS_SITE_QUERY,
    bibliography_graph,
    build_mediator,
    homepage_templates,
    news_graph,
    news_templates,
)

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def _load_example(name):
    path = os.path.join(EXAMPLES_DIR, name)
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestFullPipelines:
    def test_bibtex_to_browsable_site(self, tmp_path):
        data = bibliography_graph(30, seed=10)
        builder = SiteBuilder(data)
        builder.define(
            SiteDefinition("home", HOMEPAGE_QUERY, homepage_templates(),
                           roots=["RootPage()"])
        )
        built = builder.build("home")
        assert built.generated.dangling_links() == []
        written = built.write(str(tmp_path))
        assert all(os.path.exists(p) for p in written)
        with open(os.path.join(str(tmp_path), "index.html")) as handle:
            assert "<html>" in handle.read()

    def test_mediated_org_pipeline(self):
        mediator = build_mediator(people=25, seed=2)
        warehouse = mediator.materialize()
        # join integrity: every publication author that matches a person
        # has a back edge
        for person in warehouse.collection("People"):
            for publication in warehouse.targets(person, "publication"):
                authors = warehouse.targets(publication, "authorPerson")
                assert person in authors

    def test_site_graph_persists_through_repository(self, tmp_path):
        repo = Repository(str(tmp_path))
        data = bibliography_graph(10, seed=3)
        site_graph = evaluate(parse(HOMEPAGE_QUERY), data)
        repo.store("site", site_graph)
        reloaded = Repository(str(tmp_path)).fetch("site")
        assert reloaded.stats() == site_graph.stats()
        # and the reloaded site graph still renders
        generated = generate_site(reloaded, homepage_templates(), ["RootPage()"])
        assert generated.page_count > 0

    def test_news_and_sports_versions_agree_on_overlap(self):
        data = news_graph(60, seed=8)
        general = evaluate(parse(NEWS_SITE_QUERY), data)
        sports = evaluate(parse(SPORTS_SITE_QUERY), data)
        sports_articles = {
            o.name for o in sports.nodes() if o.name.startswith("ArticlePage(")
        }
        general_articles = {
            o.name for o in general.nodes() if o.name.startswith("ArticlePage(")
        }
        assert sports_articles <= general_articles
        assert len(sports_articles) < len(general_articles)

    def test_dynamic_browse_agrees_with_generated_pages(self):
        data = news_graph(30, seed=1)
        program = parse(NEWS_SITE_QUERY)
        site_graph = evaluate(program, data)
        generated = generate_site(site_graph, news_templates(), ["FrontPage()"])
        dynamic = DynamicSite(program, data)
        session = BrowseSession(dynamic)
        edges = session.visit(NodeInstance("FrontPage", ()))
        category_targets = [
            t for label, t in edges
            if label == "Category" and isinstance(t, NodeInstance)
        ]
        for target in category_targets:
            assert generated.filenames.get(target.oid()) is not None

    def test_constraint_holds_across_scales(self):
        constraint = (
            'forall X (YearPages(X) => exists Y (RootPage(Y) and Y -> "YearPage" -> X))'
        )
        for count in (5, 40):
            data = bibliography_graph(count, seed=count)
            site_graph = evaluate(parse(HOMEPAGE_QUERY), data)
            assert check(constraint, site_graph).holds

    def test_textonly_version_of_generated_site(self):
        """Compose: build a site graph, then strip image-bearing edges
        with a second query over the *site* graph (the paper's TextOnly)."""
        data = bibliography_graph(10, seed=5)
        site_graph = evaluate(parse(HOMEPAGE_QUERY), data)
        site_graph.create_collection("Root")
        from repro.graph import Oid

        site_graph.add_to_collection("Root", Oid("RootPage()"))
        textonly = evaluate(
            """
            where Root(p), p -> * -> q, q -> l -> q', not(isPostScript(q'))
            create New(p), New(q), New(q')
            link New(q) -> l -> New(q')
            collect TextOnlyRoot(New(p))
            """,
            site_graph,
        )
        assert textonly.collection_cardinality("TextOnlyRoot") == 1
        assert not any(
            getattr(t, "type", None) and t.type.value == "postscript"
            for _, _, t in textonly.edges()
        )

    def test_ordered_authors_end_to_end(self):
        """The section 6.3 integer-key idiom: author order survives the
        unordered data model all the way into rendered HTML."""
        from repro import BibtexWrapper, Renderer
        from repro.template import parse_template

        bibtex = "@article{k, title={T}, author={Zoe Last and Abe First}, year=1998}"
        data = BibtexWrapper(bibtex, ordered_authors=True).wrap()
        site_graph = evaluate(
            "where Publications(x), x -> l -> v create P(x) link P(x) -> l -> v",
            data,
        )
        from repro.graph import Oid

        page = Oid("P(k)")
        html = Renderer(site_graph).render(
            parse_template(
                '<SFOR a IN author DELIM=", "><SFMT @a.name></SFOR>'
            ),
            page,
        )
        assert html == "Zoe Last, Abe First"  # document order, not alphabetical
        sorted_html = Renderer(site_graph).render(
            parse_template("<SFMT author ENUM ORDER=ascend KEY=order>"),
            page,
        )
        assert sorted_html.index("Zoe") < sorted_html.index("Abe")

    def test_ddl_exchange_between_systems(self):
        """Dump a mediated graph, reload it elsewhere, define a site on it."""
        warehouse = build_mediator(people=10, seed=4).materialize()
        transported = ddl.loads(ddl.dumps(warehouse))
        rows = evaluate(
            "where People(p) create P(p) collect Ps(P(p))", transported
        )
        assert rows.collection_cardinality("Ps") == 10


@pytest.mark.parametrize(
    "example, args",
    [
        ("quickstart.py", ()),
        ("homepage_site.py", ()),
        ("news_site.py", ("_unused", "30")),
        ("org_site.py", ("_unused", "40")),
        ("bilingual_site.py", ()),
        ("custom_news.py", ()),
    ],
)
def test_examples_run(example, args, tmp_path, capsys):
    module = _load_example(example)
    out_dir = str(tmp_path / example.replace(".py", ""))
    if args:
        module.main(out_dir, *args[1:])
    else:
        module.main(out_dir)
    captured = capsys.readouterr()
    assert "wrote" in captured.out
    assert os.path.isdir(out_dir) or any(
        os.path.isdir(os.path.join(out_dir, d)) for d in ("internal", "general")
        if os.path.isdir(out_dir)
    )


def test_living_site_example_runs(capsys):
    module = _load_example("living_site.py")
    module.main()
    out = capsys.readouterr().out
    assert "audit of the materialized site" in out
    assert "verdict: OK" in out
