"""Integration: a "living site" -- data changes flow through the
maintainer to both a materialized site and the dynamic server."""

import pytest

from repro.core import PageServer, SiteMaintainer
from repro.core.server import LazySiteGraph
from repro.graph import Graph, Oid, string
from repro.template import TemplateSet

QUERY = """
create Root()
where Items(x), x -> "name" -> n
create Page(x)
link Page(x) -> "name" -> n, Root() -> "Item" -> Page(x)
collect Pages(Page(x))
"""


def _templates() -> TemplateSet:
    templates = TemplateSet()
    templates.add("root", "<h1>Items: <SFMT Item COUNT></h1><SFMT Item UL>")
    templates.add("page", "<p><SFMT name></p>")
    templates.for_object("Root()", "root")
    templates.for_collection("Pages", "page")
    return templates


@pytest.fixture
def living():
    data = Graph()
    first = data.add_node(Oid("i1"))
    data.add_edge(first, "name", string("first"))
    data.add_to_collection("Items", first)
    server = PageServer(QUERY, data, _templates())
    maintainer = SiteMaintainer(QUERY, data)
    return data, server, maintainer


class TestLivingSite:
    def test_server_sees_update_after_invalidate(self, living):
        data, server, maintainer = living
        assert "Items: 1" in server.get("/")
        maintainer.add_object("Items", [("name", string("second"))])
        # stale until invalidated (caches are per-instance)
        server.invalidate()
        page = server.get("/")
        assert "Items: 2" in page and "second" in page

    def test_old_paths_survive_invalidation(self, living):
        data, server, maintainer = living
        first_link = server.links_of("/")[0]
        before = server.get(first_link)
        maintainer.add_object("Items", [("name", string("second"))])
        server.invalidate()
        assert server.get(first_link) == before  # unchanged page unchanged

    def test_new_pages_become_servable(self, living):
        data, server, maintainer = living
        maintainer.add_object("Items", [("name", string("second"))])
        server.invalidate()
        links = server.links_of("/")
        assert len(links) == 2
        assert any("second" in server.get(link) for link in links)

    def test_maintained_site_and_server_agree(self, living):
        data, server, maintainer = living
        maintainer.add_object("Items", [("name", string("second"))])
        server.invalidate()
        # both views show the same item names
        server_names = {
            server.get(link).replace("<p>", "").replace("</p>", "")
            for link in server.links_of("/")
        }
        site_names = {
            str(maintainer.site_graph.attribute(oid, "name"))
            for oid in maintainer.site_graph.collection("Pages")
        }
        assert server_names == site_names

    def test_edit_propagation_then_serve(self, living):
        from repro.core.propagation import EditPropagator

        data, server, maintainer = living
        propagator = EditPropagator(maintainer)
        propagator.apply(Oid("Page(i1)"), "name", string("first"),
                         string("renamed"))
        server.invalidate()
        assert "renamed" in server.get("/")
