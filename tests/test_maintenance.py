"""Unit tests for incremental site maintenance (repro.core.maintenance).

The contract under test everywhere: after any sequence of updates, the
maintained site graph equals a fresh evaluation over the current data.
"""

import pytest

from repro.core import SiteMaintainer
from repro.graph import Graph, Oid, integer, string
from repro.struql import evaluate, parse
from repro.workloads import HOMEPAGE_QUERY, bibliography_graph

FLAT_QUERY = """
create Root()
where Items(x), x -> "name" -> n
create Page(x)
link Page(x) -> "name" -> n, Root() -> "Item" -> Page(x)
collect Pages(Page(x))
"""

PATH_QUERY = """
where Items(x), x -> * -> y, Items(y)
create Pair(x, y)
link Pair(x, y) -> "from" -> x
collect Pairs(Pair(x, y))
"""

NEG_QUERY = """
where Items(x), not(x -> "hidden" -> h)
create Page(x)
collect Visible(Page(x))
"""


def _canon(graph):
    return (
        sorted(
            (s.name, l, t.name if isinstance(t, Oid) else repr(t))
            for s, l, t in graph.edges()
        ),
        sorted(o.name for o in graph.nodes()),
        {c: sorted(o.name for o in graph.collection(c))
         for c in graph.collection_names()},
    )


def _assert_consistent(maintainer):
    fresh = evaluate(parse_cached(maintainer), maintainer.data_graph)
    assert _canon(maintainer.site_graph) == _canon(fresh)


def parse_cached(maintainer):
    return maintainer.program


@pytest.fixture
def flat():
    data = Graph()
    for index in range(3):
        oid = data.add_node()
        data.add_edge(oid, "name", string(f"item{index}"))
        data.add_to_collection("Items", oid)
    return SiteMaintainer(FLAT_QUERY, data)


class TestSeeding:
    def test_add_object_seeds(self, flat):
        flat.add_object("Items", [("name", string("new"))])
        assert flat.last_report.queries_seeded == 1
        assert flat.last_report.queries_skipped == 1  # the create-Root query
        assert flat.last_report.full_rebuilds == 0
        _assert_consistent(flat)

    def test_add_edge_seeds(self, flat):
        member = flat.data_graph.collection("Items")[0]
        flat.add_edge(member, "name", string("alias"))
        assert flat.last_report.queries_seeded == 1
        _assert_consistent(flat)

    def test_irrelevant_edge_skipped(self, flat):
        member = flat.data_graph.collection("Items")[0]
        flat.add_edge(member, "unrelated", string("x"))
        assert flat.last_report.queries_seeded == 0
        assert flat.last_report.queries_recomputed == 0
        _assert_consistent(flat)

    def test_membership_addition(self, flat):
        loose = flat.data_graph.add_node()
        flat.data_graph.add_edge(loose, "name", string("loose"))
        flat.add_to_collection("Items", loose)
        assert flat.last_report.queries_seeded == 1
        _assert_consistent(flat)

    def test_seeding_adds_only_the_delta(self, flat):
        before_edges = flat.site_graph.edge_count
        flat.add_object("Items", [("name", string("delta"))])
        # one Page node, name + Item edges, one collect: small delta
        assert flat.last_report.nodes_added == 1
        assert 0 < flat.last_report.edges_added <= 3
        assert flat.site_graph.edge_count == before_edges + flat.last_report.edges_added


class TestRecomputeFallbacks:
    def test_nested_block_match_recomputes(self):
        data = bibliography_graph(6, seed=90)
        maintainer = SiteMaintainer(HOMEPAGE_QUERY, data)
        pub = data.collection("Publications")[0]
        maintainer.add_edge(pub, "year", integer(1888))
        assert maintainer.last_report.queries_recomputed >= 1
        assert maintainer.last_report.full_rebuilds == 0
        _assert_consistent(maintainer)
        assert maintainer.site_graph.has_node(Oid("YearPage(1888)"))

    def test_path_query_recomputes(self):
        data = Graph()
        a, b = data.add_node(), data.add_node()
        data.add_edge(a, "to", b)
        data.add_to_collection("Items", a)
        data.add_to_collection("Items", b)
        maintainer = SiteMaintainer(PATH_QUERY, data)
        c = data.add_node()
        data.add_to_collection("Items", c)
        maintainer.add_edge(b, "to", c)
        assert maintainer.last_report.queries_recomputed == 1
        _assert_consistent(maintainer)


class TestFullRebuild:
    def test_negation_rebuilds(self):
        data = Graph()
        oid = data.add_node()
        data.add_edge(oid, "name", string("x"))
        data.add_to_collection("Items", oid)
        maintainer = SiteMaintainer(NEG_QUERY, data)
        assert maintainer.site_graph.collection_cardinality("Visible") == 1
        maintainer.add_edge(oid, "hidden", string("yes"))
        assert maintainer.last_report.full_rebuilds == 1
        # the page really disappeared -- additive maintenance could not do this
        assert maintainer.site_graph.collection_cardinality("Visible") == 0
        _assert_consistent(maintainer)

    def test_edge_deletion_rebuilds(self, flat):
        member = flat.data_graph.collection("Items")[0]
        target = flat.data_graph.attribute(member, "name")
        flat.remove_edge(member, "name", target)
        assert flat.last_report.full_rebuilds == 1
        _assert_consistent(flat)

    def test_object_deletion_rebuilds(self, flat):
        member = flat.data_graph.collection("Items")[0]
        flat.remove_object(member)
        assert flat.last_report.full_rebuilds == 1
        _assert_consistent(flat)


class TestSequences:
    def test_mixed_update_sequence_stays_consistent(self):
        data = bibliography_graph(8, seed=91)
        maintainer = SiteMaintainer(HOMEPAGE_QUERY, data)
        maintainer.add_object(
            "Publications",
            [("title", string("Fresh")), ("year", integer(1998)),
             ("category", string("web")), ("author", string("Ada"))],
        )
        _assert_consistent(maintainer)
        pub = maintainer.data_graph.collection("Publications")[1]
        maintainer.add_edge(pub, "category", string("systems"))
        _assert_consistent(maintainer)
        maintainer.add_edge(pub, "author", string("Grace"))
        _assert_consistent(maintainer)
        maintainer.remove_edge(pub, "author", string("Grace"))
        _assert_consistent(maintainer)

    def test_report_merge(self):
        from repro.core import MaintenanceReport

        left = MaintenanceReport(queries_seeded=1, edges_added=2)
        right = MaintenanceReport(queries_skipped=3, edges_added=1)
        left.merge(right)
        assert left.queries_seeded == 1
        assert left.queries_skipped == 3
        assert left.edges_added == 3
