"""Property-based test: the maintenance invariant under random update
sequences.

For any sequence of insert-style updates applied through the maintainer,
the maintained site graph must equal a fresh evaluation of the program
over the resulting data graph.  This is the central correctness property
of repro.core.maintenance, so it gets the hypothesis treatment.
"""

from hypothesis import given, settings, strategies as st

from repro.core import SiteMaintainer
from repro.graph import Graph, Oid, integer, string
from repro.struql import evaluate

SITE_QUERY = """
create Root()
where Items(x), x -> "name" -> n
create Page(x)
link Page(x) -> "name" -> n, Root() -> "Item" -> Page(x)
collect Pages(Page(x))
{
  where x -> "group" -> g
  create GroupPage(g)
  link GroupPage(g) -> "Member" -> Page(x), Root() -> "Group" -> GroupPage(g)
  collect Groups(GroupPage(g))
}
"""

# update operations: (kind, payload)
_updates = st.lists(
    st.one_of(
        st.tuples(st.just("object"), st.integers(0, 5)),       # add object
        st.tuples(st.just("group-edge"), st.integers(0, 5)),   # add group edge
        st.tuples(st.just("name-edge"), st.integers(0, 5)),    # extra name
        st.tuples(st.just("noise-edge"), st.integers(0, 5)),   # irrelevant
        st.tuples(st.just("member"), st.integers(0, 5)),       # collection add
    ),
    min_size=1,
    max_size=8,
)


def _canon(graph):
    return (
        sorted(
            (s.name, l, t.name if isinstance(t, Oid) else repr(t))
            for s, l, t in graph.edges()
        ),
        sorted(o.name for o in graph.nodes()),
        {c: sorted(o.name for o in graph.collection(c))
         for c in graph.collection_names()},
    )


@given(_updates)
@settings(max_examples=40, deadline=None)
def test_maintenance_equals_fresh_evaluation(updates):
    data = Graph()
    seed_items = []
    for index in range(2):
        oid = data.add_node()
        data.add_edge(oid, "name", string(f"seed{index}"))
        data.add_to_collection("Items", oid)
        seed_items.append(oid)
    maintainer = SiteMaintainer(SITE_QUERY, data)

    loose_nodes = []
    serial = 0
    for kind, which in updates:
        serial += 1
        items = maintainer.data_graph.collection("Items")
        if kind == "object":
            maintainer.add_object(
                "Items",
                [("name", string(f"obj{serial}")),
                 ("group", string(f"g{which % 3}"))],
            )
        elif kind == "group-edge":
            target = items[which % len(items)]
            maintainer.add_edge(target, "group", string(f"g{which % 3}"))
        elif kind == "name-edge":
            target = items[which % len(items)]
            maintainer.add_edge(target, "name", string(f"alias{serial}"))
        elif kind == "noise-edge":
            target = items[which % len(items)]
            maintainer.add_edge(target, "noise", integer(serial))
        else:  # member: promote a loose node
            if not loose_nodes:
                loose = maintainer.data_graph.add_node()
                maintainer.data_graph.add_edge(loose, "name", string(f"loose{serial}"))
                loose_nodes.append(loose)
            maintainer.add_to_collection("Items", loose_nodes.pop())
        assert maintainer.last_report.full_rebuilds == 0  # all inserts
    fresh = evaluate(maintainer.program, maintainer.data_graph)
    assert _canon(maintainer.site_graph) == _canon(fresh)
