"""Unit tests for the GAV warehousing mediator (repro.mediator)."""

import pytest

from repro.errors import MediatorError
from repro.graph import Oid
from repro.mediator import Mediator
from repro.repository import Repository
from repro.wrappers import DdlWrapper

SOURCE_A = """
collection People
object mff { name: "Mary" login: "mff" }
object suciu { name: "Dan" login: "suciu" }
member People: mff, suciu
"""

SOURCE_B = """
collection Pubs
object p1 { title: "Strudel" writer: "mff" }
member Pubs: p1
"""


def _mediator(repo=None):
    mediator = Mediator(repository=repo)
    mediator.add_source("a", DdlWrapper(SOURCE_A))
    mediator.add_source("b", DdlWrapper(SOURCE_B))
    return mediator


class TestConfiguration:
    def test_duplicate_source_rejected(self):
        mediator = _mediator()
        with pytest.raises(MediatorError):
            mediator.add_source("a", DdlWrapper(SOURCE_A))

    def test_remove_source(self):
        mediator = _mediator()
        mediator.remove_source("b")
        assert mediator.source_names() == ["a"]

    def test_remove_unknown_raises(self):
        with pytest.raises(MediatorError):
            _mediator().remove_source("ghost")

    def test_import_requires_known_source(self):
        with pytest.raises(MediatorError):
            _mediator().import_collection("ghost", "People")

    def test_materialize_without_sources(self):
        with pytest.raises(MediatorError):
            Mediator().materialize()


class TestStaging:
    def test_collections_prefixed_per_source(self):
        staging = _mediator().staging_graph()
        assert staging.has_collection("a.People")
        assert staging.has_collection("b.Pubs")

    def test_report_source_sizes(self):
        mediator = _mediator()
        mediator.staging_graph()
        assert set(mediator.last_report.source_sizes) == {"a", "b"}


class TestMaterialize:
    def test_import_collection_verbatim(self):
        mediator = _mediator()
        mediator.import_collection("a", "People")
        warehouse = mediator.materialize()
        assert warehouse.collection_cardinality("People") == 2
        assert warehouse.has_node(Oid("mff"))  # oids preserved

    def test_import_renaming(self):
        mediator = _mediator()
        mediator.import_collection("a", "People", as_name="Staff")
        warehouse = mediator.materialize()
        assert warehouse.collection_cardinality("Staff") == 2

    def test_import_unknown_collection_raises(self):
        mediator = _mediator()
        mediator.import_collection("a", "Nothing")
        with pytest.raises(MediatorError):
            mediator.materialize()

    def test_gav_mapping_builds_mediated_collection(self):
        mediator = _mediator()
        mediator.add_mapping(
            """
            where "a.People"(p), p -> l -> v
            create Person(p)
            link Person(p) -> l -> v
            collect Persons(Person(p))
            """
        )
        warehouse = mediator.materialize()
        assert warehouse.collection_cardinality("Persons") == 2

    def test_gav_join_across_sources(self):
        mediator = _mediator()
        mediator.add_mapping(
            """
            where "a.People"(p), p -> l -> v
            create Person(p)
            link Person(p) -> l -> v
            collect Persons(Person(p))
            where "b.Pubs"(q), q -> "writer" -> w,
                  "a.People"(p), p -> "login" -> w
            create Pub(q)
            link Pub(q) -> "author" -> Person(p)
            collect Pubs(Pub(q))
            """
        )
        warehouse = mediator.materialize()
        pub = warehouse.collection("Pubs")[0]
        author = warehouse.attribute(pub, "author")
        assert str(warehouse.attribute(author, "name")) == "Mary"

    def test_warehouse_stored_in_repository(self):
        repo = Repository()
        mediator = _mediator(repo)
        mediator.import_collection("a", "People")
        mediator.materialize("data")
        assert "data" in repo

    def test_refresh_recomputes(self):
        mediator = _mediator()
        mediator.import_collection("a", "People")
        first = mediator.materialize()
        second = mediator.refresh()
        assert first is not second
        assert first.stats() == second.stats()

    def test_report_counts(self):
        mediator = _mediator()
        mediator.import_collection("a", "People")
        mediator.add_mapping('where "b.Pubs"(q) create P(q) collect Ps(P(q))')
        mediator.materialize()
        report = mediator.last_report
        assert report.collections_imported == 1
        assert report.mappings_run == 1
        assert report.warehouse_size["nodes"] > 0
