"""Additional coverage: unbound-unbound path conditions, constant link
targets in dynamic expansion, SIF over loop variables, maintenance with
arc-variable copies, and mediator re-registration."""

import pytest

from repro.core import DynamicSite, NodeInstance, SiteMaintainer
from repro.graph import Graph, Oid, string
from repro.mediator import Mediator
from repro.struql import evaluate, parse, query_bindings
from repro.template import Renderer, parse_template
from repro.wrappers import DdlWrapper


class TestUnboundPathCondition:
    def test_path_with_no_bound_endpoint(self):
        graph = Graph()
        a, b, c = graph.add_node(), graph.add_node(), graph.add_node()
        graph.add_edge(a, "n", b)
        graph.add_edge(b, "n", c)
        rows = query_bindings('where x -> "n"."n" -> y', graph)
        assert len(rows) == 1
        assert rows[0]["x"] == a and rows[0]["y"] == c

    def test_unbound_path_agrees_with_naive(self):
        graph = Graph()
        nodes = [graph.add_node() for _ in range(4)]
        for left, right in zip(nodes, nodes[1:]):
            graph.add_edge(left, "n", right)
        fast = query_bindings('where x -> "n"* -> y', graph)
        slow = query_bindings(
            'where x -> "n"* -> y', graph, optimize=False, use_indexes=False
        )
        def canon(rows):
            return sorted((str(r["x"]), str(r["y"])) for r in rows)
        assert canon(fast) == canon(slow)
        assert len(fast) == 4 + 3 + 2 + 1  # all ordered pairs incl. empty path


class TestDynamicConstTargets:
    QUERY = """
    where Items(x)
    create Page(x)
    link Page(x) -> "kind" -> "item", Page(x) -> "self" -> x
    collect Pages(Page(x))
    """

    def _data(self):
        graph = Graph()
        oid = graph.add_node(Oid("i1"))
        graph.add_edge(oid, "name", string("x"))
        graph.add_to_collection("Items", oid)
        return graph

    def test_constant_target_in_expansion(self):
        data = self._data()
        dynamic = DynamicSite(self.QUERY, data)
        page = dynamic.instances_of("Page")[0]
        edges = dict()
        for label, target in dynamic.expand(page):
            edges[label] = target
        assert str(edges["kind"]) == "item"
        assert edges["self"] == Oid("i1")  # data-node target

    def test_matches_static(self):
        data = self._data()
        static = evaluate(parse(self.QUERY), data)
        dynamic = DynamicSite(self.QUERY, data)
        page_oid = Oid("Page(i1)")
        static_edges = sorted(
            (l, str(t)) for l, t in static.out_edges(page_oid)
        )
        dynamic_edges = sorted(
            (l, str(t if not isinstance(t, NodeInstance) else t.oid()))
            for l, t in dynamic.expand(dynamic.instances_of("Page")[0])
        )
        assert static_edges == dynamic_edges


class TestTemplateLoopConditionals:
    def _graph(self):
        graph = Graph()
        page = graph.add_node(Oid("P()"))
        for name, public in (("a", "yes"), ("b", "no"), ("c", "yes")):
            child = graph.add_node(Oid(f"C({name})"))
            graph.add_edge(child, "name", string(name))
            graph.add_edge(child, "public", string(public))
            graph.add_edge(page, "child", child)
        return graph, page

    def test_sif_over_loop_variable(self):
        graph, page = self._graph()
        template = parse_template(
            '<SFOR c IN child><SIF @c.public = "yes"><SFMT @c.name></SIF></SFOR>'
        )
        assert Renderer(graph).render(template, page) == "ac"

    def test_selse_over_loop_variable(self):
        graph, page = self._graph()
        template = parse_template(
            '<SFOR c IN child DELIM=","><SIF @c.public = "yes">+<SELSE>-</SIF></SFOR>'
        )
        assert Renderer(graph).render(template, page) == "+,-,+"

    def test_nested_loops_shadowing(self):
        graph, page = self._graph()
        template = parse_template(
            "<SFOR c IN child><SFOR c IN @c.name>[<SFMT @c>]</SFOR></SFOR>"
        )
        assert Renderer(graph).render(template, page) == "[a][b][c]"


class TestMaintenanceArcVariables:
    COPY_QUERY = """
    where Items(x), x -> l -> v
    create Page(x)
    link Page(x) -> l -> v
    collect Pages(Page(x))
    """

    def test_arc_variable_copy_seeded(self):
        data = Graph()
        oid = data.add_node(Oid("i1"))
        data.add_edge(oid, "name", string("x"))
        data.add_to_collection("Items", oid)
        maintainer = SiteMaintainer(self.COPY_QUERY, data)
        maintainer.add_edge(oid, "brand_new_attribute", string("v"))
        assert maintainer.last_report.queries_seeded == 1
        page_value = maintainer.site_graph.attribute(
            Oid("Page(i1)"), "brand_new_attribute"
        )
        assert str(page_value) == "v"
        fresh = evaluate(parse(self.COPY_QUERY), data)
        assert maintainer.site_graph.stats() == fresh.stats()


class TestMediatorReRegistration:
    def test_remove_then_add_same_name(self):
        mediator = Mediator()
        mediator.add_source("a", DdlWrapper('object x { v: "1" }\ncollection C\nmember C: x'))
        mediator.remove_source("a")
        mediator.add_source("a", DdlWrapper('object y { v: "2" }\ncollection C\nmember C: y'))
        mediator.import_collection("a", "C")
        warehouse = mediator.materialize()
        assert warehouse.has_node(Oid("y"))
        assert not warehouse.has_node(Oid("x"))

    def test_remove_source_drops_its_imports(self):
        mediator = Mediator()
        mediator.add_source("a", DdlWrapper('object x { v: "1" }\ncollection C\nmember C: x'))
        mediator.add_source("b", DdlWrapper('object z { v: "3" }\ncollection D\nmember D: z'))
        mediator.import_collection("a", "C")
        mediator.import_collection("b", "D")
        mediator.remove_source("a")
        warehouse = mediator.materialize()
        assert warehouse.has_collection("D")
        assert not warehouse.has_collection("C")
