"""Unit tests for oids and Skolem functions (repro.graph.oid)."""

from repro.graph import Oid, OidAllocator, SkolemRegistry, integer, skolem_term_name, string


class TestAllocator:
    def test_fresh_are_unique(self):
        allocator = OidAllocator()
        assert allocator.fresh() != allocator.fresh()

    def test_hint_embedded(self):
        assert OidAllocator().fresh("pub").name.startswith("&pub.")

    def test_reserve_past(self):
        allocator = OidAllocator()
        allocator.reserve_past(100)
        assert int(allocator.fresh().name[1:]) > 100

    def test_reserve_past_never_moves_backwards(self):
        allocator = OidAllocator(start=50)
        allocator.reserve_past(10)
        assert int(allocator.fresh().name[1:]) >= 50


class TestSkolemRegistry:
    def test_deterministic(self):
        registry = SkolemRegistry()
        first = registry.apply("YearPage", (integer(1998),))
        second = registry.apply("YearPage", (integer(1998),))
        assert first is second

    def test_different_args_different_oids(self):
        registry = SkolemRegistry()
        assert registry.apply("F", (integer(1),)) != registry.apply("F", (integer(2),))

    def test_different_functions_different_oids(self):
        registry = SkolemRegistry()
        args = (string("x"),)
        assert registry.apply("F", args) != registry.apply("G", args)

    def test_lookup(self):
        registry = SkolemRegistry()
        oid = registry.apply("F", ())
        assert registry.lookup("F", ()) is oid
        assert registry.lookup("G", ()) is None

    def test_terms_iteration(self):
        registry = SkolemRegistry()
        registry.apply("F", ())
        registry.apply("G", (integer(1),))
        terms = list(registry.terms())
        assert len(terms) == 2
        assert {t[0] for t in terms} == {"F", "G"}

    def test_functions(self):
        registry = SkolemRegistry()
        registry.apply("F", ())
        registry.apply("F", (integer(1),))
        registry.apply("G", ())
        assert registry.functions() == frozenset({"F", "G"})

    def test_instances_of(self):
        registry = SkolemRegistry()
        registry.apply("F", (integer(1),))
        registry.apply("F", (integer(2),))
        registry.apply("G", ())
        assert len(list(registry.instances_of("F"))) == 2

    def test_len(self):
        registry = SkolemRegistry()
        registry.apply("F", ())
        registry.apply("F", ())  # memoized, no growth
        assert len(registry) == 1


class TestTermNames:
    def test_zero_arg(self):
        assert skolem_term_name("RootPage", ()) == "RootPage()"

    def test_atom_args(self):
        assert skolem_term_name("YearPage", (integer(1998),)) == "YearPage(1998)"
        assert skolem_term_name("C", (string("web"),)) == "C('web')"

    def test_oid_arg(self):
        assert skolem_term_name("New", (Oid("&3"),)) == "New(&3)"

    def test_registry_oid_named_after_term(self):
        registry = SkolemRegistry()
        oid = registry.apply("YearPage", (integer(1998),))
        assert oid.name == "YearPage(1998)"
