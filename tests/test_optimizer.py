"""Unit tests for the greedy condition planner (repro.struql.optimizer)."""

import pytest

from repro.errors import StruqlEvaluationError
from repro.repository import IndexStatistics
from repro.struql import estimate_cost, order_conditions, parse_query
from repro.workloads import bibliography_graph


@pytest.fixture
def stats():
    return IndexStatistics.from_graph(bibliography_graph(30, seed=0))


def _conditions(text):
    return parse_query(text + " create Dummy()").where


class TestOrdering:
    def test_filters_run_after_generators(self, stats):
        conditions = _conditions("where isImageFile(v), Publications(x), x -> l -> v")
        ordered = order_conditions(conditions, frozenset(), stats)
        assert str(ordered[0]) == "Publications(x)"
        assert str(ordered[-1]) == "isImageFile(v)"

    def test_selection_pushed_before_expansion(self, stats):
        conditions = _conditions(
            'where Publications(x), x -> "year" -> y, y = "1998", x -> l -> v'
        )
        ordered = [str(c) for c in order_conditions(conditions, frozenset(), stats)]
        assert ordered.index('y = "1998"') < ordered.index("x -> l -> v")

    def test_collection_before_unbound_arc_variable_edge(self, stats):
        # the any-label extent (every edge) dwarfs the collection extent
        conditions = _conditions("where x -> l -> v, Publications(x)")
        ordered = order_conditions(conditions, frozenset(), stats)
        assert str(ordered[0]) == "Publications(x)"

    def test_initially_bound_variables_respected(self, stats):
        conditions = _conditions("where isImageFile(v)")
        ordered = order_conditions(conditions, frozenset({"v"}), stats)
        assert len(ordered) == 1

    def test_unbindable_order_comparison_raises(self, stats):
        conditions = _conditions("where a < b")
        with pytest.raises(StruqlEvaluationError):
            order_conditions(conditions, frozenset(), stats)

    def test_negation_waits_for_shared_variables(self, stats):
        conditions = _conditions(
            'where not(x -> "journal" -> j), Publications(x)'
        )
        ordered = order_conditions(conditions, frozenset(), stats)
        assert str(ordered[0]) == "Publications(x)"


class TestCostModel:
    def test_bound_collection_is_filter(self, stats):
        (condition,) = _conditions("where Publications(x)")
        assert estimate_cost(condition, {"x"}, stats, [condition]) < 1

    def test_unbound_collection_costs_extent(self, stats):
        (condition,) = _conditions("where Publications(x)")
        cost = estimate_cost(condition, set(), stats, [condition])
        assert cost == stats.estimate_collection("Publications")

    def test_edge_cheaper_when_source_bound(self, stats):
        (condition,) = _conditions('where x -> "year" -> y')
        bound = estimate_cost(condition, {"x"}, stats, [condition])
        unbound = estimate_cost(condition, set(), stats, [condition])
        assert bound < unbound

    def test_scan_mode_costs_more(self, stats):
        (condition,) = _conditions('where x -> "year" -> y')
        indexed = estimate_cost(condition, {"x"}, stats, [condition], use_indexes=True)
        scanned = estimate_cost(condition, {"x"}, stats, [condition], use_indexes=False)
        assert scanned > indexed

    def test_equality_binding_costs_one(self, stats):
        (condition,) = _conditions('where y = "1998"')
        assert estimate_cost(condition, set(), stats, [condition]) == 1.0

    def test_unready_predicate_is_infinite(self, stats):
        (condition,) = _conditions("where isImageFile(q)")
        assert estimate_cost(condition, set(), stats, [condition]) == float("inf")

    def test_path_cost_grows_when_unbound(self, stats):
        (condition,) = _conditions("where x -> * -> y")
        bound = estimate_cost(condition, {"x"}, stats, [condition])
        unbound = estimate_cost(condition, set(), stats, [condition])
        assert unbound > bound
