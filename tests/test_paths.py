"""Unit tests for regular path expressions (repro.struql.paths)."""

import pytest

from repro.errors import StruqlEvaluationError
from repro.graph import Graph, string
from repro.struql import (
    Alternation,
    AnyLabel,
    Concat,
    LabelIs,
    LabelPredicate,
    Star,
    any_path,
    compile_path,
    path_exists,
    register_label_predicate,
    reverse_expr,
    sources_to,
    targets_from,
)


@pytest.fixture
def diamond():
    """a -x-> b -y-> d; a -y-> c -x-> d; d -z-> "leaf"."""
    graph = Graph()
    a, b, c, d = (graph.add_node() for _ in range(4))
    graph.add_edge(a, "x", b)
    graph.add_edge(b, "y", d)
    graph.add_edge(a, "y", c)
    graph.add_edge(c, "x", d)
    leaf = graph.add_edge(d, "z", string("leaf"))
    return graph, (a, b, c, d), leaf


class TestForward:
    def test_single_label(self, diamond):
        graph, (a, b, c, d), _ = diamond
        assert targets_from(graph, compile_path(LabelIs("x")), a) == [b]

    def test_concat(self, diamond):
        graph, (a, b, c, d), _ = diamond
        nfa = compile_path(Concat((LabelIs("x"), LabelIs("y"))))
        assert targets_from(graph, nfa, a) == [d]

    def test_alternation(self, diamond):
        graph, (a, b, c, d), _ = diamond
        nfa = compile_path(Alternation((LabelIs("x"), LabelIs("y"))))
        assert set(targets_from(graph, nfa, a)) == {b, c}

    def test_any_label(self, diamond):
        graph, (a, b, c, d), _ = diamond
        assert set(targets_from(graph, compile_path(AnyLabel()), a)) == {b, c}

    def test_star_includes_empty_path(self, diamond):
        graph, (a, b, c, d), leaf = diamond
        reached = targets_from(graph, compile_path(any_path()), a)
        assert a in reached  # "including p itself"
        assert set(reached) == {a, b, c, d, leaf}

    def test_star_of_label(self, diamond):
        graph, (a, b, c, d), _ = diamond
        reached = targets_from(graph, compile_path(Star(LabelIs("x"))), a)
        assert set(reached) == {a, b}

    def test_atom_endpoint(self, diamond):
        graph, (a, b, c, d), leaf = diamond
        nfa = compile_path(Concat((LabelIs("x"), LabelIs("y"), LabelIs("z"))))
        assert targets_from(graph, nfa, a) == [leaf]

    def test_cycle_termination(self):
        graph = Graph()
        a, b = graph.add_node(), graph.add_node()
        graph.add_edge(a, "n", b)
        graph.add_edge(b, "n", a)
        reached = targets_from(graph, compile_path(Star(LabelIs("n"))), a)
        assert set(reached) == {a, b}

    def test_missing_source(self, diamond):
        graph, nodes, _ = diamond
        from repro.graph import Oid

        assert targets_from(graph, compile_path(AnyLabel()), Oid("ghost")) == []

    def test_label_predicate(self, diamond):
        graph, (a, b, c, d), _ = diamond
        unregister = register_label_predicate("isX", lambda l: l == "x")
        try:
            assert targets_from(graph, compile_path(LabelPredicate("isX")), a) == [b]
        finally:
            unregister()

    def test_unregistered_predicate_raises(self, diamond):
        graph, (a, *_), _ = diamond
        with pytest.raises(StruqlEvaluationError):
            targets_from(graph, compile_path(LabelPredicate("nope")), a)


class TestReverse:
    def test_reverse_expr_flips_concat(self):
        expr = Concat((LabelIs("a"), LabelIs("b")))
        assert reverse_expr(expr) == Concat((LabelIs("b"), LabelIs("a")))

    def test_reverse_expr_recurses(self):
        expr = Star(Concat((LabelIs("a"), Alternation((LabelIs("b"), LabelIs("c"))))))
        reversed_expr = reverse_expr(expr)
        assert reversed_expr.inner.parts[0] == Alternation((LabelIs("b"), LabelIs("c")))

    def test_sources_to_matches_forward(self, diamond):
        graph, (a, b, c, d), _ = diamond
        expr = Concat((LabelIs("x"), LabelIs("y")))
        backward = compile_path(reverse_expr(expr))
        assert sources_to(graph, backward, d) == [a]

    def test_sources_to_atom(self, diamond):
        graph, (a, b, c, d), leaf = diamond
        backward = compile_path(reverse_expr(LabelIs("z")))
        assert sources_to(graph, backward, leaf) == [d]

    def test_sources_to_star(self, diamond):
        graph, (a, b, c, d), _ = diamond
        backward = compile_path(reverse_expr(any_path()))
        assert set(sources_to(graph, backward, d)) == {a, b, c, d}


class TestPathExists:
    def test_positive(self, diamond):
        graph, (a, b, c, d), _ = diamond
        assert path_exists(graph, compile_path(any_path()), a, d)

    def test_negative(self, diamond):
        graph, (a, b, c, d), _ = diamond
        assert not path_exists(graph, compile_path(LabelIs("x")), a, d)

    def test_empty_path_self(self, diamond):
        graph, (a, *_), _ = diamond
        assert path_exists(graph, compile_path(any_path()), a, a)

    def test_empty_path_requires_star(self, diamond):
        graph, (a, *_), _ = diamond
        assert not path_exists(graph, compile_path(LabelIs("x")), a, a)

    def test_atom_target(self, diamond):
        graph, (a, *_), leaf = diamond
        assert path_exists(graph, compile_path(any_path()), a, leaf)


class TestEquivalences:
    """Forward and backward evaluation must agree pairwise."""

    @pytest.mark.parametrize(
        "expr",
        [
            LabelIs("x"),
            Concat((LabelIs("x"), LabelIs("y"))),
            Alternation((LabelIs("x"), Concat((LabelIs("y"), LabelIs("x"))))),
            Star(AnyLabel()),
            Star(LabelIs("x")),
        ],
        ids=["label", "concat", "alt", "anystar", "labelstar"],
    )
    def test_forward_backward_agree(self, diamond, expr):
        graph, nodes, _ = diamond
        forward = compile_path(expr)
        backward = compile_path(reverse_expr(expr))
        forward_pairs = {
            (source, target)
            for source in nodes
            for target in targets_from(graph, forward, source)
        }
        backward_pairs = {
            (source, target)
            for target in list(nodes)
            for source in sources_to(graph, backward, target)
        }
        # restrict forward pairs to node targets for the comparison
        node_set = set(nodes)
        forward_pairs = {p for p in forward_pairs if p[1] in node_set}
        assert forward_pairs == backward_pairs
