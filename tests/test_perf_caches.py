"""The query-engine fast path: epochs, incremental statistics, plan and
NFA caches, warm-engine reuse, and parallel page generation.

The contracts under test:

* every structural mutation bumps :attr:`Graph.epoch`; no-op mutations
  (duplicate edges, re-added nodes) do not;
* :meth:`IndexStatistics.snapshot` (incremental counters) agrees exactly
  with :meth:`IndexStatistics.from_graph` (full rescan) under arbitrary
  mutation sequences -- the property that makes the fast path safe;
* a warm engine produces the same bindings and site graphs as a cold
  per-query engine, before and after mutations (plan-cache invalidation
  by epoch);
* parallel page generation is byte-identical to serial generation.
"""

import string as stringmod

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import Atom, AtomType, Graph, string
from repro.repository import IndexStatistics, Repository, ddl, graph_statistics
from repro.struql import (
    Metrics,
    PlanCache,
    QueryEngine,
    clear_plan_cache,
    evaluate,
    explain,
    global_plan_cache,
    parse_query,
)
from repro.template import generate_site
from repro.workloads import NEWS_SITE_QUERY, news_graph, news_templates

# ---------------------------------------------------------------------- #
# epoch semantics


def test_epoch_bumps_on_structural_changes():
    graph = Graph()
    assert graph.epoch == 0
    a = graph.add_node()
    b = graph.add_node()
    after_nodes = graph.epoch
    assert after_nodes == 2

    graph.add_edge(a, "l", b)
    assert graph.epoch == after_nodes + 1
    graph.add_edge(a, "l", string("v"))
    assert graph.epoch == after_nodes + 2

    graph.create_collection("C")
    graph.add_to_collection("C", a)
    after_collection = graph.epoch
    assert after_collection == after_nodes + 4

    graph.remove_from_collection("C", a)
    graph.remove_edge(a, "l", b)
    graph.remove_node(b)
    assert graph.epoch > after_collection


def test_epoch_unchanged_by_noop_mutations():
    graph = Graph()
    a = graph.add_node()
    b = graph.add_node()
    graph.add_edge(a, "l", b)
    graph.add_to_collection("C", a)
    before = graph.epoch

    graph.add_node(a)  # re-add existing node
    graph.add_edge(a, "l", b)  # duplicate edge (set semantics)
    graph.create_collection("C")  # already exists
    graph.add_to_collection("C", a)  # already a member
    assert graph.epoch == before


def test_graph_statistics_cached_until_mutation():
    graph = Graph()
    a = graph.add_node()
    graph.add_edge(a, "l", string("v"))

    first = graph_statistics(graph)
    assert graph_statistics(graph) is first  # unchanged graph: same snapshot
    assert first.epoch == graph.epoch
    assert first.fingerprint() == (id(graph), graph.epoch)

    graph.add_edge(a, "l", string("w"))
    second = graph_statistics(graph)
    assert second is not first
    assert second.epoch == graph.epoch
    assert second == IndexStatistics.from_graph(graph)


# ---------------------------------------------------------------------- #
# incremental statistics == full rescan (property)

_atoms = st.one_of(
    st.text(alphabet=stringmod.ascii_letters, max_size=6).map(
        lambda s: Atom(AtomType.STRING, s)
    ),
    st.integers(-50, 50).map(lambda i: Atom(AtomType.INTEGER, i)),
)

_LABELS = ["a", "b", "c"]


@st.composite
def mutation_scripts(draw):
    """A sequence of graph mutations encoded as data."""
    steps = draw(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["node", "edge_node", "edge_atom", "remove_edge",
                     "remove_node", "collect"]
                ),
                st.integers(0, 7),
                st.integers(0, 7),
                st.sampled_from(_LABELS),
                _atoms,
            ),
            max_size=40,
        )
    )
    return steps


def _apply(graph, nodes, step):
    op, i, j, label, atom = step
    if op == "node" or not nodes:
        nodes.append(graph.add_node())
        return
    source = nodes[i % len(nodes)]
    if not graph.has_node(source):
        return
    if op == "edge_node":
        target = nodes[j % len(nodes)]
        if graph.has_node(target):
            graph.add_edge(source, label, target)
    elif op == "edge_atom":
        graph.add_edge(source, label, atom)
    elif op == "remove_edge":
        targets = graph.targets(source, label)
        if targets:
            graph.remove_edge(source, label, targets[j % len(targets)])
    elif op == "remove_node":
        graph.remove_node(source)
    elif op == "collect":
        graph.add_to_collection("C", source)


@given(mutation_scripts())
@settings(max_examples=80, deadline=None)
def test_incremental_statistics_match_full_rescan(script):
    graph = Graph()
    nodes = []
    for step in script:
        _apply(graph, nodes, step)
        assert IndexStatistics.snapshot(graph) == IndexStatistics.from_graph(graph)


# ---------------------------------------------------------------------- #
# warm engine == cold engine (property), plan-cache invalidation

_QUERY_TEXTS = [
    'where C(x), x -> "a" -> y create Probe()',
    "where C(x), x -> l -> v create Probe()",
    'where C(x), not(x -> "b" -> y) create Probe()',
]


def _cold_bindings(graph, conditions):
    engine = QueryEngine(
        graph,
        stats=IndexStatistics.from_graph(graph),
        plan_cache=PlanCache(),
    )
    return engine.bindings(conditions)


@given(mutation_scripts())
@settings(max_examples=40, deadline=None)
def test_warm_engine_matches_cold_engine_across_mutations(script):
    queries = [parse_query(text) for text in _QUERY_TEXTS]
    graph = Graph()
    nodes = []
    warm = QueryEngine(graph, plan_cache=PlanCache())
    # interleave mutations with evaluations: caches must never go stale
    chunk = max(1, len(script) // 3)
    for start in range(0, len(script) + 1, chunk):
        for step in script[start:start + chunk]:
            _apply(graph, nodes, step)
        for query in queries:
            assert warm.bindings(query.where) == _cold_bindings(graph, query.where)


def test_plan_cache_hits_and_epoch_invalidation():
    graph = Graph()
    a = graph.add_node()
    graph.add_to_collection("C", a)
    graph.add_edge(a, "a", string("v"))
    query = parse_query(_QUERY_TEXTS[0])

    cache = PlanCache()
    engine = QueryEngine(graph, plan_cache=cache)
    engine.bindings(query.where)
    assert engine.metrics.plan_cache_misses == 1
    assert engine.metrics.plan_cache_hits == 0
    assert engine.metrics.stats_snapshots == 1

    engine.bindings(query.where)
    assert engine.metrics.plan_cache_hits == 1
    assert engine.metrics.plan_cache_misses == 1
    assert engine.metrics.stats_snapshots == 1  # same epoch: no new snapshot

    graph.add_edge(a, "a", string("w"))  # mutation invalidates by epoch
    engine.bindings(query.where)
    assert engine.metrics.plan_cache_misses == 2
    assert engine.metrics.stats_snapshots == 2

    stats = cache.stats()
    assert stats["plans"] == 2  # one per fingerprint
    assert stats["nfas"] == 0  # no path conditions in this query


def test_plan_cache_lru_eviction():
    cache = PlanCache(max_entries=2)
    queries = [parse_query(text) for text in _QUERY_TEXTS]
    keys = [
        PlanCache.plan_key(q.where, frozenset(), True, (1, 0)) for q in queries
    ]
    for query, key in zip(queries, keys):
        cache.put_plan(key, query.where, list(query.where))
    assert cache.get_plan(keys[0]) is None  # evicted
    assert cache.get_plan(keys[1]) is not None
    assert cache.get_plan(keys[2]) is not None


def test_global_plan_cache_shared_and_clearable():
    clear_plan_cache()
    graph = Graph()
    a = graph.add_node()
    graph.add_to_collection("C", a)
    graph.add_edge(a, "a", string("v"))
    query = parse_query(_QUERY_TEXTS[0])

    first = QueryEngine(graph)
    second = QueryEngine(graph)
    assert first.plan_cache is global_plan_cache()
    first.bindings(query.where)
    second.bindings(query.where)  # same conditions, same epoch: a hit
    assert second.metrics.plan_cache_hits == 1
    clear_plan_cache()
    assert global_plan_cache().stats()["plans"] == 0


# ---------------------------------------------------------------------- #
# warm evaluate() and site-graph equality


def test_evaluate_with_reused_engine_matches_cold():
    from repro.struql import parse

    data = news_graph(15, seed=5)
    # plans are keyed by condition identity: parse once, evaluate many
    program = parse(NEWS_SITE_QUERY)
    engine = QueryEngine(data, plan_cache=PlanCache())
    cold = evaluate(NEWS_SITE_QUERY, data)
    warm_first = evaluate(program, data, engine=engine)
    metrics = Metrics()
    warm_second = evaluate(program, data, engine=engine, metrics=metrics)
    assert ddl.dumps(warm_first) == ddl.dumps(cold)
    assert ddl.dumps(warm_second) == ddl.dumps(cold)
    assert metrics.plan_cache_misses == 0  # steady state: fully cached
    assert metrics.plan_cache_hits > 0


def test_evaluate_reused_engine_sees_mutations():
    data = news_graph(8, seed=6)
    engine = QueryEngine(data, plan_cache=PlanCache())
    evaluate(NEWS_SITE_QUERY, data, engine=engine)

    # mutate: new article joins the Articles collection
    article = data.add_node()
    data.add_edge(article, "headline", string("Breaking"))
    data.add_edge(article, "category", string("world"))
    data.add_to_collection("Articles", article)

    warm = evaluate(NEWS_SITE_QUERY, data, engine=engine)
    cold = evaluate(NEWS_SITE_QUERY, data)
    assert ddl.dumps(warm) == ddl.dumps(cold)


# ---------------------------------------------------------------------- #
# parallel generation


@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_generation_byte_identical(workers):
    data = news_graph(25, seed=7)
    site_graph = evaluate(NEWS_SITE_QUERY, data)

    serial = generate_site(site_graph, news_templates(), ["FrontPage()"])
    metrics = Metrics()
    parallel = generate_site(
        site_graph, news_templates(), ["FrontPage()"],
        workers=workers, metrics=metrics,
    )
    assert parallel.pages == serial.pages  # filenames AND bytes
    assert parallel.filenames == serial.filenames
    assert metrics.pages_rendered_parallel == serial.page_count
    assert serial.page_count > 1


def test_parallel_generation_workers_one_is_serial():
    data = news_graph(5, seed=8)
    site_graph = evaluate(NEWS_SITE_QUERY, data)
    metrics = Metrics()
    site = generate_site(
        site_graph, news_templates(), ["FrontPage()"], workers=1, metrics=metrics
    )
    assert metrics.pages_rendered_parallel == 0
    assert site.page_count > 0


# ---------------------------------------------------------------------- #
# repository and explain fast paths


def test_repository_statistics_served_from_epoch_cache():
    repo = Repository()
    graph = Graph()
    a = graph.add_node()
    graph.add_edge(a, "l", string("v"))
    repo.store("g", graph, persist=False)

    first = repo.statistics("g")
    assert repo.statistics("g") is first
    schema_first = repo.schema_index("g")
    assert repo.schema_index("g") is schema_first

    graph.add_edge(a, "m", string("w"))
    second = repo.statistics("g")
    assert second is not first
    assert "m" in second.label_cardinality
    schema_second = repo.schema_index("g")
    assert schema_second is not schema_first
    assert schema_second.has_label("m")


def test_cli_stats_reports_cache_counters(tmp_path, capsys):
    from repro.cli import main

    graph = news_graph(5, seed=9)
    path = tmp_path / "g.ddl"
    path.write_text(ddl.dumps(graph), encoding="utf-8")
    code = main([
        "stats", str(path),
        "--query", 'where Articles(a), a -> "category" -> c create Probe()',
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "epoch:" in out
    assert "cold: plan_cache_hits=0" in out
    assert "warm: plan_cache_hits=1" in out
    assert "plan cache:" in out
    assert "delta log:" in out
    assert "stats refresh:" in out


def test_explain_uses_shared_statistics_snapshot():
    graph = Graph()
    a = graph.add_node()
    graph.add_to_collection("People", a)
    graph.add_edge(a, "name", string("ada"))
    snapshot = graph_statistics(graph)
    text = explain('where People(p), p -> "name" -> n create Probe()', graph)
    assert "collection scan People" in text
    assert graph_statistics(graph) is snapshot  # explain did not rebuild


# ---------------------------------------------------------------------- #
# delta-driven incremental maintenance (PR: warm cost scales with the edit)

import re as _re

from repro.core import (
    BrowseSession,
    DynamicSite,
    NodeInstance,
    PageServer,
    RegeneratingSite,
)
from repro.repository import SchemaIndex


def test_delta_log_records_mutations():
    graph = Graph()
    a = graph.add_node()
    epoch = graph.epoch
    b = graph.add_node()
    graph.add_edge(a, "l", b)
    graph.add_to_collection("C", a)
    delta = graph.delta_since(epoch)
    assert delta is not None and not delta.empty
    assert (a, "l", b) in delta.edges_added
    assert b in delta.nodes_added
    assert ("C", a) in delta.members_added
    assert "C" in delta.collections_created
    assert a in delta.touched_oids()
    # the same-epoch delta is empty, never None
    now = graph.delta_since(graph.epoch)
    assert now is not None and now.empty


def test_delta_log_truncation_returns_none():
    graph = Graph()
    a = graph.add_node()
    base = graph.epoch
    for index in range(5000):  # exceed the bounded log's window
        graph.add_edge(a, "l", string(f"v{index}"))
    assert graph.delta_since(base) is None  # honest: coarse fallback
    recent = graph.epoch
    graph.add_edge(a, "l", string("tail"))
    tail = graph.delta_since(recent)
    assert tail is not None and tail.size() == 1


@given(mutation_scripts())
@settings(max_examples=60, deadline=None)
def test_statistics_advance_matches_full_rescan(script):
    """`IndexStatistics.advance` (O(|delta|)) must agree exactly with a
    full O(edges) rescan after arbitrary mutation sequences."""
    graph = Graph()
    nodes = []
    stats = IndexStatistics.snapshot(graph)
    for step in script:
        _apply(graph, nodes, step)
        delta = graph.delta_since(stats.epoch)
        assert delta is not None  # short scripts never truncate the log
        stats = stats.advance(graph, delta)
        assert stats == IndexStatistics.from_graph(graph)


def test_schema_index_advanced_matches_rebuild():
    graph = Graph()
    a = graph.add_node()
    graph.add_edge(a, "a", string("v"))
    graph.add_to_collection("C", a)
    index = SchemaIndex.from_graph(graph)
    epoch = graph.epoch

    b = graph.add_node()
    graph.add_edge(b, "b", string("w"))
    graph.add_to_collection("D", b)
    patched = index.advanced(graph.delta_since(epoch))
    rebuilt = SchemaIndex.from_graph(graph)
    assert patched is not None
    assert patched.labels == rebuilt.labels
    assert patched.collections == rebuilt.collections

    graph.remove_edge(b, "b", graph.targets(b, "b")[0])
    assert index.advanced(graph.delta_since(epoch)) is None  # removal: punt


def test_dynamic_site_refresh_is_selective():
    data = news_graph(10, seed=11)
    site = DynamicSite(NEWS_SITE_QUERY, data, cache=True)
    for root in site.roots():
        site.expand(root)
    articles = site.instances_of("ArticlePage")
    for instance in articles:
        site.expand(instance)

    unchanged = site.refresh()
    assert not unchanged.coarse and unchanged.dropped == 0

    target = sorted(data.collection("Articles"), key=lambda o: o.name)[0]
    data.add_edge(target, "headline", string("Edited"))
    result = site.refresh()
    assert not result.coarse
    assert result.dropped > 0 and result.retained > 0
    assert site.metrics.fine_invalidations > 0
    assert site.metrics.entries_retained > 0

    # after the refresh every expansion equals a cold site's
    fresh = DynamicSite(NEWS_SITE_QUERY, data, cache=True)
    for instance in articles:
        assert site.expand(instance) == fresh.expand(instance)


def test_lookahead_skips_fully_cached_prefetch():
    data = news_graph(8, seed=12)
    site = DynamicSite(NEWS_SITE_QUERY, data, cache=True, lookahead=True)
    session = BrowseSession(site)
    front = NodeInstance("FrontPage", ())
    session.visit(front)  # prefetches the front page's successors
    before = site.metrics.lookahead_skipped
    session.visit(front)  # the same successors are now fully cached
    assert site.metrics.lookahead_skipped > before


def _crawl_paths(server):
    queue, visited = ["/"], set()
    while queue:
        path = queue.pop(0)
        if path in visited:
            continue
        visited.add(path)
        for href in _re.findall(r'href="([^"]+)"', server.get(path)):
            if href.startswith("/") and href not in visited:
                queue.append(href)
    return sorted(visited)


def test_page_server_refresh_serves_fresh_bytes():
    data = news_graph(12, seed=13)
    server = PageServer(NEWS_SITE_QUERY, data, news_templates())
    _crawl_paths(server)

    target = sorted(data.collection("Articles"), key=lambda o: o.name)[0]
    data.add_edge(target, "headline", string("Edited headline"))
    result = server.refresh()
    assert not result.coarse
    assert server.pages_invalidated > 0 and server.pages_retained > 0

    fresh = PageServer(NEWS_SITE_QUERY, data, news_templates())
    for path in _crawl_paths(fresh):
        assert server.get(path) == fresh.get(path), path


REGEN_QUERY = """
create Home()
where C(x)
create Page(x)
link Home() -> "Item" -> Page(x),
     Page(x) -> "origin" -> x
collect Pages(Page(x))
{
  where x -> l -> v
  link Page(x) -> l -> v
}
{
  where D(x)
  link Home() -> "Featured" -> Page(x)
}
"""


def _regen_templates():
    from repro.template import TemplateSet

    templates = TemplateSet()
    templates.add("home", "<html><body><h1>Home</h1><SFMT Item UL>"
                          "<SIF Featured><SFMT Featured UL></SIF></body></html>")
    templates.add("page", "<html><body><SFMT a UL><SFMT b UL><SFMT c UL>"
                          "</body></html>")
    templates.for_object("Home()", "home")
    templates.for_collection("Pages", "page")
    return templates


def _apply_regen(regen, nodes, step):
    """Drive one mutation-script step through RegeneratingSite's
    maintainer-mediated entry points."""
    op, i, j, label, atom = step
    data = regen.maintainer.data_graph
    if op == "node" or not nodes:
        nodes.append(regen.add_object("C", [(label, atom)]))
        return
    source = nodes[i % len(nodes)]
    if not data.has_node(source):
        return
    if op == "edge_node":
        target = nodes[j % len(nodes)]
        if data.has_node(target):
            regen.add_edge(source, label, target)
    elif op == "edge_atom":
        regen.add_edge(source, label, atom)
    elif op == "remove_edge":
        targets = data.targets(source, label)
        if targets:
            regen.remove_edge(source, label, targets[j % len(targets)])
    elif op == "remove_node":
        regen.remove_object(source)
    elif op == "collect":
        regen.add_to_collection("D", source)


@given(mutation_scripts())
@settings(max_examples=20, deadline=None)
def test_selective_regeneration_matches_full_rebuild(script):
    """The static pipeline's correctness contract: after every mutation,
    the selectively regenerated pages are byte-identical to building the
    site from scratch over the current data graph."""
    from repro.struql import parse

    data = Graph()
    data.create_collection("C")
    data.create_collection("D")
    program = parse(REGEN_QUERY)
    regen = RegeneratingSite(program, data, _regen_templates(), ["Home()"])
    nodes = []
    saw_fine = False
    for step in script:
        _apply_regen(regen, nodes, step)
        if not regen.last_report.coarse and regen.last_report.pages_retained:
            saw_fine = True
        fresh_graph = evaluate(program, data)
        fresh = generate_site(fresh_graph, _regen_templates(), ["Home()"])
        assert regen.pages == fresh.pages
    del saw_fine  # coverage varies per script; identity is the invariant
