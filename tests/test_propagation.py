"""Unit tests for edit propagation (repro.core.propagation)."""

import pytest

from repro.core import SiteMaintainer
from repro.core.propagation import EditPropagator, PropagationError
from repro.graph import Graph, Oid, atoms_equal, string, text_file
from repro.struql import evaluate
from repro.workloads import HOMEPAGE_QUERY, bibliography_graph

SIMPLE_QUERY = """
where Items(x), x -> l -> v
create Page(x)
link Page(x) -> l -> v, Page(x) -> "kind" -> "item"
collect Pages(Page(x))
"""


@pytest.fixture
def simple():
    data = Graph()
    oid = data.add_node(Oid("i1"))
    data.add_edge(oid, "name", string("old name"))
    data.add_edge(oid, "note", text_file("old body"))
    data.add_to_collection("Items", oid)
    maintainer = SiteMaintainer(SIMPLE_QUERY, data)
    return maintainer, EditPropagator(maintainer), oid


class TestTrace:
    def test_traces_arc_variable_copy(self, simple):
        maintainer, propagator, item = simple
        origins = propagator.trace(Oid("Page(i1)"), "name", string("old name"))
        assert len(origins) == 1
        assert origins[0].source == item
        assert origins[0].label == "name"

    def test_constant_value_has_no_origin(self, simple):
        maintainer, propagator, item = simple
        assert propagator.trace(Oid("Page(i1)"), "kind", string("item")) == []

    def test_unknown_page_raises(self, simple):
        maintainer, propagator, item = simple
        with pytest.raises(PropagationError):
            propagator.trace(Oid("Ghost()"), "name", string("x"))

    def test_wrong_value_untraced(self, simple):
        maintainer, propagator, item = simple
        assert propagator.trace(Oid("Page(i1)"), "name", string("nope")) == []

    def test_instance_lookup(self, simple):
        maintainer, propagator, item = simple
        instance = propagator.instance_for(Oid("Page(i1)"))
        assert instance is not None and instance.function == "Page"
        assert propagator.instance_for(Oid("nope")) is None


class TestApply:
    def test_edit_rewrites_data_and_site(self, simple):
        maintainer, propagator, item = simple
        result = propagator.apply(
            Oid("Page(i1)"), "name", string("old name"), string("new name")
        )
        assert result.site_rebuilt
        assert len(result.origins_rewritten) == 1
        # data graph rewritten
        assert str(maintainer.data_graph.attribute(item, "name")) == "new name"
        # site graph reflects the edit
        page_value = maintainer.site_graph.attribute(Oid("Page(i1)"), "name")
        assert str(page_value) == "new name"

    def test_edit_preserves_atom_flavour(self, simple):
        maintainer, propagator, item = simple
        propagator.apply(
            Oid("Page(i1)"), "note", text_file("old body"), string("new body")
        )
        note = maintainer.data_graph.attribute(item, "note")
        assert note.type.value == "text"  # flavour kept
        assert str(note) == "new body"

    def test_editing_constant_raises(self, simple):
        maintainer, propagator, item = simple
        with pytest.raises(PropagationError):
            propagator.apply(Oid("Page(i1)"), "kind", string("item"), string("x"))

    def test_site_equals_fresh_evaluation_after_edit(self, simple):
        maintainer, propagator, item = simple
        propagator.apply(
            Oid("Page(i1)"), "name", string("old name"), string("renamed")
        )
        fresh = evaluate(maintainer.program, maintainer.data_graph)
        assert maintainer.site_graph.stats() == fresh.stats()


class TestOnHomepageSite:
    def test_edit_title_shown_on_presentation_page(self):
        data = bibliography_graph(5, seed=95)
        maintainer = SiteMaintainer(HOMEPAGE_QUERY, data)
        propagator = EditPropagator(maintainer)
        pub = data.collection("Publications")[0]
        old_title = data.attribute(pub, "title")
        page = Oid(f"PaperPresentation({pub.name})")
        result = propagator.apply(page, "title", old_title, string("Edited Title"))
        # the same title was copied to the AbstractPage too: both origins
        # point at the single data edge, so one rewrite covers both pages
        assert len(result.origins_rewritten) == 1
        assert str(data.attribute(pub, "title")) == "Edited Title"
        abstract_page = Oid(f"AbstractPage({pub.name})")
        shown = maintainer.site_graph.attribute(abstract_page, "title")
        assert str(shown) == "Edited Title"

    def test_shared_value_multiple_origins(self):
        """Two data edges with the same value feeding one page attribute:
        both are rewritten (the displayed value changes everywhere)."""
        data = Graph()
        oid = data.add_node(Oid("i1"))
        data.add_edge(oid, "tag", string("dup"))
        data.add_edge(oid, "alt", string("dup"))
        data.add_to_collection("Items", oid)
        query = """
        where Items(x), x -> l -> v
        create Page(x)
        link Page(x) -> "label" -> v
        collect Pages(Page(x))
        """
        maintainer = SiteMaintainer(query, data)
        propagator = EditPropagator(maintainer)
        origins = propagator.trace(Oid("Page(i1)"), "label", string("dup"))
        assert len(origins) == 2
