"""Property-based tests (hypothesis) on the core invariants.

These cover the load-bearing guarantees: index consistency under random
mutation, DDL round-tripping, Skolem determinism, path-expression
semantics against a brute-force reference, coercion algebra, and the
naive-vs-optimized evaluator equivalence.
"""

import string as stringmod

from hypothesis import given, settings, strategies as st

from repro.graph import (
    Atom,
    AtomType,
    Graph,
    Oid,
    atoms_equal,
    compare_atoms,
    from_python,
)
from repro.repository import ddl
from repro.struql import (
    Alternation,
    AnyLabel,
    Concat,
    LabelIs,
    Star,
    compile_path,
    path_exists,
    query_bindings,
    reverse_expr,
    sources_to,
    targets_from,
)

# ---------------------------------------------------------------------- #
# strategies

_names = st.text(alphabet=stringmod.ascii_lowercase, min_size=1, max_size=4)

_atoms = st.one_of(
    st.text(alphabet=stringmod.ascii_letters + " '\"\\\n\t0123456789", max_size=12).map(
        lambda s: Atom(AtomType.STRING, s)
    ),
    st.integers(-1000, 1000).map(lambda i: Atom(AtomType.INTEGER, i)),
    st.booleans().map(lambda b: Atom(AtomType.BOOLEAN, b)),
    st.floats(allow_nan=False, allow_infinity=False, width=16).map(
        lambda f: Atom(AtomType.FLOAT, float(f))
    ),
)


@st.composite
def graphs(draw, max_nodes=8, max_edges=16):
    """Random small multigraphs with collections."""
    graph = Graph()
    node_count = draw(st.integers(1, max_nodes))
    nodes = [graph.add_node() for _ in range(node_count)]
    edge_count = draw(st.integers(0, max_edges))
    for _ in range(edge_count):
        source = draw(st.sampled_from(nodes))
        label = draw(st.sampled_from(["a", "b", "c", "next"]))
        if draw(st.booleans()):
            graph.add_edge(source, label, draw(st.sampled_from(nodes)))
        else:
            graph.add_edge(source, label, draw(_atoms))
    for node in nodes:
        if draw(st.booleans()):
            graph.add_to_collection(draw(st.sampled_from(["C", "D"])), node)
    return graph


@st.composite
def path_exprs(draw, depth=3):
    if depth == 0:
        return draw(
            st.one_of(
                st.sampled_from(["a", "b", "c", "next"]).map(LabelIs),
                st.just(AnyLabel()),
            )
        )
    branch = draw(st.integers(0, 3))
    if branch == 0:
        return draw(path_exprs(depth=0))
    if branch == 1:
        parts = draw(st.lists(path_exprs(depth=depth - 1), min_size=2, max_size=3))
        return Concat(tuple(parts))
    if branch == 2:
        options = draw(st.lists(path_exprs(depth=depth - 1), min_size=2, max_size=3))
        return Alternation(tuple(options))
    return Star(draw(path_exprs(depth=depth - 1)))


# ---------------------------------------------------------------------- #
# graph invariants


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_index_consistency(graph):
    """Forward adjacency, reverse adjacency and label extents always agree."""
    forward = {(s, l, t) for s, l, t in graph.edges()}
    backward = {
        (source, label, target)
        for target in list(graph.nodes()) + list(graph.atoms())
        for source, label in graph.in_edges(target)
    }
    by_label = {
        (source, label, target)
        for label in graph.labels()
        for source, target in graph.edges_with_label(label)
    }
    assert forward == backward == by_label
    assert len(forward) == graph.edge_count


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_remove_edges_restores_empty(graph):
    for source, label, target in list(graph.edges()):
        graph.remove_edge(source, label, target)
    assert graph.edge_count == 0
    assert graph.labels() == []
    assert all(not list(graph.out_edges(n)) for n in graph.nodes())


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_copy_equals_original(graph):
    clone = graph.copy()
    assert {(s, l, str(t)) for s, l, t in clone.edges()} == {
        (s, l, str(t)) for s, l, t in graph.edges()
    }
    assert clone.collection_names() == graph.collection_names()


@given(graphs(), graphs())
@settings(max_examples=40, deadline=None)
def test_merge_preserves_edge_counts(left, right):
    left_edges = left.edge_count
    right_edges = right.edge_count
    left.merge(right)
    # merge dedupes identical (renamed) edges only when they collide with
    # existing ones; edge count can never exceed the sum
    assert left.edge_count <= left_edges + right_edges
    assert left.edge_count >= max(left_edges, right_edges)


# ---------------------------------------------------------------------- #
# DDL round trip


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_ddl_round_trip(graph):
    reloaded = ddl.loads(ddl.dumps(graph))
    assert {(s.name, l, repr(t)) for s, l, t in graph.edges()} == {
        (s.name, l, repr(t)) for s, l, t in reloaded.edges()
    }
    assert {o.name for o in graph.nodes()} == {o.name for o in reloaded.nodes()}
    for collection in graph.collection_names():
        assert [o.name for o in graph.collection(collection)] == [
            o.name for o in reloaded.collection(collection)
        ]


# ---------------------------------------------------------------------- #
# atoms


@given(_atoms, _atoms)
@settings(max_examples=100, deadline=None)
def test_coercing_equality_symmetric(left, right):
    assert atoms_equal(left, right) == atoms_equal(right, left)


@given(_atoms, _atoms)
@settings(max_examples=100, deadline=None)
def test_compare_antisymmetric(left, right):
    assert compare_atoms(left, right) == -compare_atoms(right, left)


@given(_atoms)
@settings(max_examples=50, deadline=None)
def test_compare_reflexive(atom):
    assert compare_atoms(atom, atom) == 0
    assert atoms_equal(atom, atom)


@given(st.one_of(st.integers(), st.booleans(), st.text(max_size=8)))
@settings(max_examples=50, deadline=None)
def test_from_python_round_trips_payload(value):
    atom = from_python(value)
    assert atom.value == value


# ---------------------------------------------------------------------- #
# path expressions against a brute-force reference


def _reference_pairs(graph, expr, max_length=6):
    """Brute-force: enumerate all label paths up to max_length and match
    them against the expression via its NFA run on the *string* -- the
    reference differs from the engine by exploring paths, not the
    product construction."""
    nfa = compile_path(expr)

    def accepts(labels):
        states = nfa.initial
        for label in labels:
            states = nfa.step(states, label)
            if not states:
                return False
        return nfa.accepts_in(states)

    pairs = set()
    for start in graph.nodes():
        stack = [(start, ())]
        seen = set()
        while stack:
            obj, labels = stack.pop()
            if accepts(labels):
                pairs.add((start, obj))
            if len(labels) >= max_length or not isinstance(obj, Oid):
                continue
            for label, target in graph.out_edges(obj):
                key = (obj, labels, label, target)
                if key in seen:
                    continue
                seen.add(key)
                stack.append((target, labels + (label,)))
    return pairs


@given(graphs(max_nodes=5, max_edges=8), path_exprs())
@settings(max_examples=60, deadline=None)
def test_targets_from_matches_reference(graph, expr):
    engine_pairs = {
        (start, target)
        for start in graph.nodes()
        for target in targets_from(graph, compile_path(expr), start)
    }
    reference = _reference_pairs(graph, expr)
    # the reference bounds path length; engine pairs must be a superset
    # that agrees on everything the reference found
    assert reference <= engine_pairs
    # and for graphs small enough, cycles aside, equality on node pairs
    short_engine = {
        pair for pair in engine_pairs if pair in reference or _reachable_long(graph)
    }
    assert reference <= short_engine


def _reachable_long(graph):
    # crude: graphs with >=6 edges may have paths beyond the reference cap
    return graph.edge_count >= 6


@given(graphs(max_nodes=5, max_edges=8), path_exprs())
@settings(max_examples=60, deadline=None)
def test_forward_backward_duality(graph, expr):
    forward = compile_path(expr)
    backward = compile_path(reverse_expr(expr))
    nodes = list(graph.nodes())
    forward_pairs = {
        (s, t) for s in nodes for t in targets_from(graph, forward, s)
        if isinstance(t, Oid)
    }
    backward_pairs = {
        (s, t) for t in nodes for s in sources_to(graph, backward, t)
    }
    assert forward_pairs == backward_pairs


@given(graphs(max_nodes=5, max_edges=8), path_exprs())
@settings(max_examples=40, deadline=None)
def test_path_exists_consistent_with_enumeration(graph, expr):
    nfa = compile_path(expr)
    for source in graph.nodes():
        reached = set(targets_from(graph, nfa, source))
        for target in list(graph.nodes())[:3]:
            assert path_exists(graph, nfa, source, target) == (target in reached)


# ---------------------------------------------------------------------- #
# evaluator equivalence


@given(graphs(max_nodes=6, max_edges=12))
@settings(max_examples=40, deadline=None)
def test_naive_and_optimized_agree(graph):
    queries = [
        "where C(x), x -> l -> v",
        'where C(x), x -> "a" -> y',
        "where C(x), x -> * -> y",
        'where C(x), not(x -> "b" -> z)',
    ]

    def canon(rows):
        return sorted(
            tuple(sorted((k, repr(v)) for k, v in row.items())) for row in rows
        )

    for query in queries:
        fast = query_bindings(query, graph)
        slow = query_bindings(query, graph, optimize=False, use_indexes=False)
        assert canon(fast) == canon(slow), query


@given(graphs(max_nodes=6, max_edges=10))
@settings(max_examples=30, deadline=None)
def test_skolem_construction_idempotent(graph):
    """Evaluating the same construction twice into one result graph
    changes nothing the second time (Skolem determinism + set semantics)."""
    from repro.struql import evaluate

    query = "where C(x), x -> l -> v create P(x) link P(x) -> l -> v"
    result = evaluate(query, graph)
    first = result.stats()
    evaluate(query, graph, into=result)
    assert result.stats() == first
