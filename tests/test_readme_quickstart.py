"""Documentation hygiene: the README quickstart must actually run.

The code block is duplicated here (READMEs drift; this test pins it) --
if this test needs changing, update README.md in the same commit.
"""

from repro import BibtexWrapper, SiteBuilder, SiteDefinition, TemplateSet

BIBTEX = """
@article{p1, title={Alpha}, author={Mary and Dan}, year=1998}
@inproceedings{p2, title={Beta}, author={Ada}, year=1997, booktitle={PODS}}
"""

SITE_QUERY = """
create RootPage()
where Publications(x), x -> l -> v
create PaperPage(x)
link PaperPage(x) -> l -> v
collect PaperPages(PaperPage(x))
{
  where x -> "year" -> y
  create YearPage(y)
  link YearPage(y) -> "Paper" -> PaperPage(x),
       YearPage(y) -> "Year" -> y,
       RootPage() -> "YearPage" -> YearPage(y)
  collect YearPages(YearPage(y))
}
"""


def test_readme_quickstart(tmp_path):
    # 1. data: wrap a BibTeX file into a semistructured data graph
    data = BibtexWrapper(BIBTEX).wrap()

    # 3. presentation: HTML templates, selected per object/collection
    templates = TemplateSet()
    templates.add("root", '<h1>Papers</h1><SFMT YearPage UL ORDER=descend KEY=Year>')
    templates.add("year", '<h2><SFMT Year></h2><SFMT Paper UL>')
    templates.add("paper", '<b><SFMT title></b> (<SFMT year>) by <SFMT author ENUM>')
    templates.for_object("RootPage()", "root")
    templates.for_collection("YearPages", "year")
    templates.for_collection("PaperPages", "paper")

    builder = SiteBuilder(data)
    builder.define(
        SiteDefinition("home", SITE_QUERY, templates, roots=["RootPage()"])
    )
    built = builder.build("home")
    paths = built.write(str(tmp_path))

    assert len(paths) == built.generated.page_count == 5  # root + 2 years + 2 papers
    index = built.pages["index.html"]
    assert "1998" in index and "1997" in index
    assert index.index("1998") < index.index("1997")  # ORDER=descend
    assert built.generated.dangling_links() == []
    paper_pages = [p for name, p in built.pages.items() if "PaperPage" in name]
    assert any("Mary, Dan" in page for page in paper_pages)
