"""Unit tests for the data repository (repro.repository)."""

import pytest

from repro.errors import RepositoryError
from repro.graph import Graph, string
from repro.repository import IndexStatistics, Repository, SchemaIndex


def _small_graph():
    graph = Graph()
    a, b = graph.add_node(), graph.add_node()
    graph.add_edge(a, "name", string("x"))
    graph.add_edge(a, "to", b)
    graph.add_to_collection("C", a)
    return graph


class TestInMemory:
    def test_store_fetch(self):
        repo = Repository()
        graph = _small_graph()
        repo.store("g", graph)
        assert repo.fetch("g") is graph

    def test_contains(self):
        repo = Repository()
        repo.store("g", _small_graph())
        assert "g" in repo
        assert "h" not in repo

    def test_fetch_unknown_raises(self):
        with pytest.raises(RepositoryError):
            Repository().fetch("ghost")

    def test_empty_name_rejected(self):
        with pytest.raises(RepositoryError):
            Repository().store("", _small_graph())

    def test_delete(self):
        repo = Repository()
        repo.store("g", _small_graph())
        repo.delete("g")
        assert "g" not in repo

    def test_delete_unknown_raises(self):
        with pytest.raises(RepositoryError):
            Repository().delete("ghost")

    def test_graph_names_sorted(self):
        repo = Repository()
        repo.store("zz", _small_graph())
        repo.store("aa", _small_graph())
        assert repo.graph_names() == ["aa", "zz"]

    def test_catalog(self):
        repo = Repository()
        repo.store("g", _small_graph())
        assert repo.catalog()["g"]["nodes"] == 2


class TestPersistence:
    def test_round_trip_through_disk(self, tmp_path):
        repo = Repository(str(tmp_path))
        graph = _small_graph()
        repo.store("g", graph)
        fresh = Repository(str(tmp_path))  # new instance, cold cache
        reloaded = fresh.fetch("g")
        assert reloaded.stats() == graph.stats()

    def test_disk_listing(self, tmp_path):
        repo = Repository(str(tmp_path))
        repo.store("g", _small_graph())
        assert Repository(str(tmp_path)).graph_names() == ["g"]

    def test_delete_removes_file(self, tmp_path):
        repo = Repository(str(tmp_path))
        repo.store("g", _small_graph())
        repo.delete("g")
        assert "g" not in Repository(str(tmp_path))

    def test_store_without_persist(self, tmp_path):
        repo = Repository(str(tmp_path))
        repo.store("g", _small_graph(), persist=False)
        assert "g" not in Repository(str(tmp_path))


class TestIndexStatistics:
    def test_snapshot_counts(self):
        stats = IndexStatistics.from_graph(_small_graph())
        assert stats.node_count == 2
        assert stats.edge_count == 2
        assert stats.label_cardinality == {"name": 1, "to": 1}
        assert stats.collection_cardinality == {"C": 1}

    def test_estimates(self):
        stats = IndexStatistics.from_graph(_small_graph())
        assert stats.estimate_label_extent("name") == 1
        assert stats.estimate_label_extent("missing") == 0
        assert stats.estimate_any_label_extent() == 2
        assert stats.estimate_collection("C") == 1

    def test_value_lookup_estimate(self):
        graph = Graph()
        oid = graph.add_node()
        for index in range(10):
            graph.add_edge(oid, "v", string(f"x{index}"))
        stats = IndexStatistics.from_graph(graph)
        assert stats.estimate_value_lookup("v") == 1  # all distinct
        assert stats.estimate_value_lookup() >= 1

    def test_average_out_degree(self):
        stats = IndexStatistics.from_graph(_small_graph())
        assert stats.average_out_degree() == 1.0

    def test_empty_graph_estimates(self):
        stats = IndexStatistics.from_graph(Graph())
        assert stats.average_out_degree() == 0.0
        assert stats.estimate_value_lookup() == 0

    def test_repository_statistics_accessor(self):
        repo = Repository()
        repo.store("g", _small_graph())
        assert repo.statistics("g").node_count == 2


class TestSchemaIndex:
    def test_contents(self):
        index = SchemaIndex.from_graph(_small_graph())
        assert index.labels == ["name", "to"]
        assert index.collections == ["C"]
        assert index.has_label("name")
        assert not index.has_collection("D")

    def test_repository_accessor(self):
        repo = Repository()
        repo.store("g", _small_graph())
        assert repo.schema_index("g").has_collection("C")
