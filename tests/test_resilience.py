"""Resilience and chaos tests: quarantine, retry/breakers, crash-safe
persistence, last-known-good serving, and the fault-injection harness.

The acceptance scenario at the bottom drives the whole pipeline with one
source hard-failing and ~10% of another source's records malformed, and
checks the site still builds, serves, and reports its degradation."""

import json
import os
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cli import main
from repro.core import PageServer
from repro.core.stats import measure_site
from repro.errors import (
    MediatorError,
    QuarantineExceeded,
    RepositoryCorruptionError,
    RepositoryError,
    WrapperError,
)
from repro.graph import Graph, Oid, string
from repro.mediator import MediationReport, Mediator
from repro.mediator.mediator import PROVENANCE_OID
from repro.repository import Repository, ddl
from repro.resilience import (
    BreakerState,
    ChaosFault,
    CircuitBreaker,
    FaultPlan,
    ManualClock,
    QuarantineReport,
    ResiliencePolicy,
    ResilienceReport,
    RetryPolicy,
    WrapPolicy,
    chaos,
    recovery_events,
    reset_recovery_events,
)
from repro.struql import parse
from repro.workloads.bibliography import (
    HOMEPAGE_QUERY,
    bibliography_graph,
    generate_entries,
    homepage_templates,
)
from repro.wrappers import (
    BibtexWrapper,
    ForeignKey,
    RelationalWrapper,
    StructuredFileWrapper,
    Table,
    XmlWrapper,
)


@pytest.fixture(autouse=True)
def _clean_global_state():
    reset_recovery_events()
    chaos.uninstall()
    yield
    reset_recovery_events()
    chaos.uninstall()


def _good_entry(i):
    return (
        f"@article{{p{i},\n"
        f"  title = {{Paper {i}}},\n"
        f"  year = {{199{i % 10}}},\n"
        f"  author = {{Author {i}}}\n"
        f"}}\n"
    )


def _bad_entry(i):
    # balanced braces, so exactly this entry fails (bad field value)
    return f"@article{{bad{i}, title = , year}}\n"


def _item_graph(tag, items=2):
    graph = Graph("data")
    graph.create_collection("Items")
    for i in range(items):
        oid = graph.add_node(Oid(f"item:{tag}:{i}"))
        graph.add_edge(oid, "label", string(f"value {tag} {i}"))
        graph.add_to_collection("Items", oid)
    return graph


def _manual_policy(max_attempts=2, threshold=3, min_sources=1):
    clock = ManualClock()
    return ResiliencePolicy(
        retry=RetryPolicy(max_attempts=max_attempts, clock=clock),
        breaker_threshold=threshold,
        min_sources=min_sources,
        clock=clock,
    )


# ------------------------------------------------------------------ #
# policies and quarantine reports


def test_wrap_policy_modes():
    assert not WrapPolicy().quarantine
    assert not WrapPolicy.strict().quarantine
    tolerant = WrapPolicy.tolerant()
    assert tolerant.quarantine and tolerant.max_errors is None
    assert WrapPolicy.tolerant(max_errors=3).max_errors == 3


def test_wrap_policy_clips_snippets():
    policy = WrapPolicy.tolerant()
    long = "x" * 500
    clipped = policy.clip(long)
    assert len(clipped) <= policy.snippet_length + 3
    assert clipped.startswith("x")


def test_quarantine_report_accumulates():
    report = QuarantineReport(source="s")
    assert report.ok and report.count == 0
    report.add("row 1", ValueError("boom"), snippet="a,b")
    assert not report.ok and report.count == 1
    as_dict = report.as_dict()
    assert as_dict["source"] == "s"
    assert as_dict["quarantined"] == 1
    assert as_dict["records"][0]["error"] == "ValueError: boom"
    assert as_dict["records"][0]["locator"] == "row 1"


# ------------------------------------------------------------------ #
# wrapper quarantine, per source kind


def test_bibtex_strict_raises_with_context():
    wrapper = BibtexWrapper(_good_entry(1) + _bad_entry(0), source_name="pubs.bib")
    with pytest.raises(WrapperError) as excinfo:
        wrapper.wrap()
    assert "pubs.bib" in str(excinfo.value)


def test_bibtex_tolerant_quarantines_bad_entries():
    text = _good_entry(1) + _bad_entry(0) + _good_entry(2) + _bad_entry(1) + _good_entry(3)
    wrapper = BibtexWrapper(text, source_name="pubs")
    graph = wrapper.wrap(WrapPolicy.tolerant())
    assert len(graph.collection("Publications")) == 3
    assert wrapper.last_quarantine.count == 2
    assert wrapper.last_quarantine.admitted == 3
    assert all(r.source == "pubs" for r in wrapper.last_quarantine.records)


def test_quarantine_budget_exceeded():
    text = _bad_entry(0) + _bad_entry(1)
    wrapper = BibtexWrapper(text, source_name="pubs")
    with pytest.raises(QuarantineExceeded) as excinfo:
        wrapper.wrap(WrapPolicy.tolerant(max_errors=1))
    assert excinfo.value.count == 2
    assert excinfo.value.budget == 1


def test_csv_tolerant_quarantines_ragged_rows():
    table = Table("T", ["a", "b"], [["1", "2"], ["only"], ["3", "4", "5"]], strict=False)
    wrapper = RelationalWrapper([table], source_name="rel")
    graph = wrapper.wrap(WrapPolicy.tolerant())
    assert len(graph.collection("T")) == 1
    assert wrapper.last_quarantine.count == 2
    locators = [r.locator for r in wrapper.last_quarantine.records]
    assert any("row 2" in loc for loc in locators)


def test_csv_strict_ragged_row_raises():
    with pytest.raises(WrapperError):
        Table("T", ["a", "b"], [["1"]])
    table = Table("T", ["a", "b"], [["1"]], strict=False)
    with pytest.raises(WrapperError):
        RelationalWrapper([table], source_name="rel").wrap()


def test_csv_dangling_foreign_key_quarantines_referencing_row():
    people = Table("People", ["id", "name"], [["a", "Ann"], ["b", "Bob"]])
    papers = Table(
        "Papers",
        ["id", "title", "author"],
        [["p1", "One", "a"], ["p2", "Two", "zz"]],
    )
    wrapper = RelationalWrapper(
        [people, papers],
        key_columns={"People": "id", "Papers": "id"},
        foreign_keys={"Papers": [ForeignKey("author", "People", "id")]},
        source_name="rel",
    )
    with pytest.raises(WrapperError):
        wrapper.wrap()
    graph = wrapper.wrap(WrapPolicy.tolerant())
    assert len(graph.collection("People")) == 2
    assert len(graph.collection("Papers")) == 1
    assert wrapper.last_quarantine.count == 1
    assert "Papers" in wrapper.last_quarantine.records[0].locator


def test_structured_tolerant_discards_only_bad_record():
    text = (
        "%collection Projects\n"
        "%id name\n"
        "name: strudel\n"
        "lead: mary\n"
        "\n"
        "name: broken\n"
        "this line has no separator\n"
        "status: active\n"
        "\n"
        "name: tioga\n"
        "lead: anne\n"
    )
    wrapper = StructuredFileWrapper(text, source_name="projects")
    with pytest.raises(WrapperError):
        wrapper.wrap()
    graph = wrapper.wrap(WrapPolicy.tolerant())
    members = {oid.name for oid in graph.collection("Projects")}
    assert members == {"Projects:strudel", "Projects:tioga"}
    assert wrapper.last_quarantine.count == 1


def test_xml_tolerant_falls_back_to_whole_source_quarantine():
    wrapper = XmlWrapper("<root><unclosed></root>", source_name="feed.xml")
    graph = wrapper.wrap(WrapPolicy.tolerant())
    assert graph.node_count == 0
    assert wrapper.last_quarantine.count == 1
    assert "line" in wrapper.last_quarantine.records[0].locator


def test_wrapper_error_carries_context():
    error = WrapperError("bad value", locator="row 3", cause=ValueError("x"))
    assert error.base_message == "bad value"
    enriched = error.with_source("people.csv")
    assert str(enriched) == "people.csv: row 3: bad value"
    assert enriched.source_name == "people.csv"
    assert enriched.locator == "row 3"


# ------------------------------------------------------------------ #
# retry and circuit breakers


def test_retry_delays_are_deterministic():
    assert RetryPolicy(seed=9).delays() == RetryPolicy(seed=9).delays()
    exact = RetryPolicy(max_attempts=4, base_delay=1.0, jitter=0.0)
    assert exact.delays() == [1.0, 2.0, 4.0]


def test_retry_call_retries_then_succeeds():
    clock = ManualClock()
    policy = RetryPolicy(
        max_attempts=4, base_delay=1.0, jitter=0.0, clock=clock
    )
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise OSError("down")
        return "ok"

    seen = []
    result = policy.call(
        flaky, retry_on=(OSError,), on_retry=lambda a, e, d: seen.append((a, d))
    )
    assert result == "ok"
    assert len(calls) == 3
    assert clock.sleeps == [1.0, 2.0]
    assert seen == [(1, 1.0), (2, 2.0)]


def test_retry_exhaustion_reraises_last_error():
    clock = ManualClock()
    policy = RetryPolicy(max_attempts=2, base_delay=0.1, jitter=0.0, clock=clock)
    with pytest.raises(OSError):
        policy.call(lambda: (_ for _ in ()).throw(OSError("gone")), retry_on=(OSError,))
    assert clock.sleeps == [0.1]


def test_retry_does_not_catch_unlisted_errors():
    calls = []

    def wrong():
        calls.append(1)
        raise ValueError("not retryable")

    with pytest.raises(ValueError):
        RetryPolicy(clock=ManualClock()).call(wrong, retry_on=(OSError,))
    assert len(calls) == 1


def test_circuit_breaker_state_machine():
    clock = ManualClock()
    breaker = CircuitBreaker("src", failure_threshold=2, reset_timeout=30.0, clock=clock)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED and breaker.allow()
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert not breaker.allow()
    clock.advance(30.0)
    assert breaker.allow()  # half-open probe
    assert breaker.state is BreakerState.HALF_OPEN
    breaker.record_failure()  # probe fails: re-open
    assert breaker.state is BreakerState.OPEN
    clock.advance(30.0)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED
    snapshot = breaker.snapshot()
    assert snapshot["name"] == "src"
    assert snapshot["state"] == "closed"
    assert snapshot["total_failures"] == 3
    assert snapshot["times_opened"] == 2


# ------------------------------------------------------------------ #
# the fault-injection harness


def test_fault_plan_fail_at_fires_on_nth_hit():
    plan = FaultPlan().fail_at("store.write.*", 2)
    plan.check("store.write.data.tmp")  # hit 1: no fault
    with pytest.raises(ChaosFault) as excinfo:
        plan.check("store.write.data.tmp")
    assert excinfo.value.hit == 2
    plan.check("store.write.data.tmp")  # hit 3: no fault
    assert plan.injected == [("store.write.data.tmp", 2)]


def test_fault_plan_fail_always_and_report():
    plan = FaultPlan(seed=5).fail_always("wrapper.*")
    with pytest.raises(ChaosFault):
        plan.check("wrapper.bibtex.wrap")
    plan_report = plan.report()
    assert plan_report["seed"] == 5
    assert plan_report["sites_reached"] == {"wrapper.bibtex.wrap": 1}
    assert plan_report["faults_injected"] == [{"site": "wrapper.bibtex.wrap", "hit": 1}]


def test_fault_plan_probability_is_seed_deterministic():
    def outcomes(seed):
        plan = FaultPlan(seed=seed).fail_with_probability("site", 0.5)
        out = []
        for _ in range(32):
            try:
                plan.check("site")
                out.append(False)
            except ChaosFault:
                out.append(True)
        return out

    assert outcomes(3) == outcomes(3)
    assert any(outcomes(3)) and not all(outcomes(3))


def test_installed_context_manager_restores_previous_plan():
    assert chaos.active() is None
    chaos.maybe_fail("anything")  # no-op without a plan
    outer = FaultPlan()
    with chaos.installed(outer):
        inner = FaultPlan().fail_always("x")
        with chaos.installed(inner):
            assert chaos.active() is inner
            with pytest.raises(ChaosFault):
                chaos.maybe_fail("x")
        assert chaos.active() is outer
    assert chaos.active() is None


def test_fault_plan_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS_SEED", "99")
    assert FaultPlan.from_env().seed == 99
    monkeypatch.setenv("REPRO_CHAOS_SEED", "junk")
    assert FaultPlan.from_env(default_seed=7).seed == 7
    monkeypatch.delenv("REPRO_CHAOS_SEED")
    assert FaultPlan.from_env(default_seed=11).seed == 11


def test_chaos_fault_is_not_a_strudel_error():
    from repro.errors import StrudelError

    assert not issubclass(ChaosFault, StrudelError)


# ------------------------------------------------------------------ #
# mediator degradation


def _three_source_mediator(repository=None, policy=None):
    mediator = Mediator(repository=repository, policy=policy)
    mediator.add_source(
        "pubs", BibtexWrapper(_good_entry(1) + _good_entry(2), source_name="pubs")
    )
    mediator.add_source(
        "people",
        RelationalWrapper(
            [Table("People", ["id", "name"], [["a", "Ann"]])],
            key_columns={"People": "id"},
            source_name="people",
        ),
    )
    mediator.add_source(
        "projects",
        StructuredFileWrapper(
            "%collection Projects\nname: strudel\n", source_name="projects"
        ),
    )
    for name in ("pubs", "people", "projects"):
        mediator.import_source(name)
    return mediator


def test_mediator_builds_partial_warehouse_when_one_source_dies():
    policy = _manual_policy(max_attempts=2)
    mediator = _three_source_mediator(policy=policy)
    plan = FaultPlan().fail_always("wrapper.structured.wrap")
    with chaos.installed(plan):
        warehouse = mediator.ingest("data")
    report = mediator.last_report
    assert report.partial and not report.stale
    assert list(report.failed_sources) == ["projects"]
    assert "ChaosFault" in report.failed_sources["projects"]
    assert report.retries["projects"] == 1  # retried once before giving up
    # survivors made it into the warehouse
    assert len(warehouse.collection("Publications")) == 2
    assert len(warehouse.collection("People")) == 1
    assert not warehouse.has_collection("Projects")
    # provenance records exactly what is present and missing
    edges = list(warehouse.out_edges(Oid(PROVENANCE_OID)))
    by_label = {}
    for label, target in edges:
        by_label.setdefault(label, []).append(target.value)
    assert by_label["partial"] == [True]
    assert set(by_label["missingSource"]) == {"projects"}
    assert set(by_label["source"]) == {"pubs", "people"}


def test_mediator_quarantine_flows_into_report_and_provenance():
    policy = _manual_policy()
    mediator = Mediator(policy=policy)
    mediator.add_source(
        "pubs",
        BibtexWrapper(_good_entry(1) + _bad_entry(0), source_name="pubs"),
    )
    mediator.import_source("pubs")
    warehouse = mediator.ingest("data")
    report = mediator.last_report
    assert report.partial
    assert report.quarantine["pubs"]["quarantined"] == 1
    assert report.quarantine["pubs"]["admitted"] == 1
    edges = dict(warehouse.out_edges(Oid(PROVENANCE_OID)))
    assert edges["quarantined"].value == 1


def test_mediator_open_breaker_skips_source():
    policy = _manual_policy(max_attempts=1, threshold=1)
    mediator = _three_source_mediator(policy=policy)
    plan = FaultPlan().fail_always("wrapper.structured.wrap")
    with chaos.installed(plan):
        mediator.ingest("data")
        assert mediator.breaker_states()["projects"]["state"] == "open"
        mediator.ingest("data")
    report = mediator.last_report
    assert report.skipped_sources == ["projects"]
    assert "projects" not in report.failed_sources


def test_mediator_serves_stale_warehouse_below_min_sources(tmp_path):
    policy = _manual_policy(max_attempts=1)
    repository = Repository(str(tmp_path))
    mediator = _three_source_mediator(repository=repository, policy=policy)
    good = mediator.ingest("data")
    with chaos.installed(FaultPlan().fail_always("wrapper.*")):
        stale = mediator.ingest("data")
    report = mediator.last_report
    assert report.stale and report.partial
    assert ddl.dumps(stale) == ddl.dumps(good)
    events = recovery_events()
    assert any(e["subject"] == "mediator" for e in events)


def test_mediator_raises_without_stale_fallback():
    policy = _manual_policy(max_attempts=1)
    mediator = _three_source_mediator(policy=policy)
    with chaos.installed(FaultPlan().fail_always("wrapper.*")):
        with pytest.raises(MediatorError):
            mediator.ingest("data")


def test_strict_mediation_still_raises():
    mediator = _three_source_mediator()
    with chaos.installed(FaultPlan().fail_always("wrapper.structured.wrap")):
        with pytest.raises(ChaosFault):
            mediator.materialize("data")


# ------------------------------------------------------------------ #
# crash-safe repository persistence

_STORE_SITES = [
    "store.backup.data.tmp",
    "store.backup.data.flush",
    "store.backup.data.rename",
    "store.write.data.tmp",
    "store.write.data.flush",
    "store.write.data.rename",
]


@pytest.mark.parametrize("site", _STORE_SITES)
def test_store_fault_preserves_previous_generation(tmp_path, site):
    directory = str(tmp_path)
    old = _item_graph("old")
    Repository(directory).store("data", old)
    new = _item_graph("new")
    with chaos.installed(FaultPlan().fail_always(site)):
        with pytest.raises(ChaosFault):
            Repository(directory).store("data", new)
    loaded = Repository(directory).fetch("data")
    assert ddl.dumps(loaded) == ddl.dumps(old)


def test_store_recovers_after_fault(tmp_path):
    directory = str(tmp_path)
    Repository(directory).store("data", _item_graph("old"))
    new = _item_graph("new")
    with chaos.installed(FaultPlan().fail_always("store.write.data.rename")):
        with pytest.raises(ChaosFault):
            Repository(directory).store("data", new)
    Repository(directory).store("data", new)  # retry without the fault
    assert ddl.dumps(Repository(directory).fetch("data")) == ddl.dumps(new)


def test_corrupt_primary_recovers_from_backup(tmp_path):
    directory = str(tmp_path)
    old, new = _item_graph("old"), _item_graph("new")
    repo = Repository(directory)
    repo.store("data", old)
    repo.store("data", new)  # backup now holds the old generation
    path = os.path.join(directory, "data.ddl")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# repro-checksum: sha256=deadbeef\ngarbage that will not parse\n")
    loaded = Repository(directory).fetch("data")
    assert ddl.dumps(loaded) == ddl.dumps(old)
    events = recovery_events()
    assert any(e["subject"] == "repository" for e in events)


def test_corruption_without_backup_surfaces(tmp_path):
    directory = str(tmp_path)
    Repository(directory).store("data", _item_graph("only"))
    path = os.path.join(directory, "data.ddl")
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text[:-10])  # truncate: checksum no longer matches
    with pytest.raises(RepositoryCorruptionError):
        Repository(directory).fetch("data")


def test_checksum_roundtrip():
    text = "collection Items\n"
    stamped = ddl.with_checksum(text)
    declared, body = ddl.split_checksum(stamped)
    assert declared == ddl.checksum(text)
    assert body == text
    assert ddl.split_checksum(text) == (None, text)


def test_backup_survives_delete_and_contains(tmp_path):
    directory = str(tmp_path)
    repo = Repository(directory)
    repo.store("data", _item_graph("one"))
    repo.store("data", _item_graph("two"))
    assert "data" in Repository(directory)
    repo.delete("data")
    assert "data" not in Repository(directory)
    with pytest.raises(RepositoryError):
        Repository(directory).fetch("data")


# ------------------------------------------------------------------ #
# last-known-good serving


def _homepage_server():
    data = bibliography_graph(12, seed=70)
    return PageServer(parse(HOMEPAGE_QUERY), data, homepage_templates())


def test_server_serves_stale_page_on_engine_fault():
    server = _homepage_server()
    warm = server.get("/")
    server.invalidate()
    with chaos.installed(FaultPlan().fail_always("engine.bindings")):
        degraded = server.get("/")
    assert degraded == warm
    assert server.degradations[-1]["kind"] == "stale"
    assert "ChaosFault" in server.degradations[-1]["error"]
    assert server.dynamic.metrics.degraded_serves == 1
    # once the fault clears, the page renders fresh again
    server.invalidate()
    assert server.get("/") == warm


def test_server_serves_error_page_when_no_last_known_good():
    server = _homepage_server()
    with chaos.installed(FaultPlan().fail_always("engine.bindings")):
        html = server.get("/")
    assert "temporarily unavailable" in html.lower()
    assert "Traceback" not in html
    assert server.degradations[-1]["kind"] == "error-page"
    assert server.dynamic.metrics.error_pages == 1


def test_server_error_page_escapes_detail():
    server = _homepage_server()
    with chaos.installed(FaultPlan().fail_always("engine.bindings")):
        html = server.get("/")
    # the injected-fault detail is shown, but as escaped text only
    assert "injected fault" in html
    assert "<script" not in html


def test_server_strict_mode_reraises():
    server = _homepage_server()
    with chaos.installed(FaultPlan().fail_always("engine.bindings")):
        with pytest.raises(ChaosFault):
            server.get("/", strict=True)
    assert server.degradations == []


def test_server_unknown_path_still_raises():
    server = _homepage_server()
    with pytest.raises(KeyError):
        server.get("/no-such-page.html")


# ------------------------------------------------------------------ #
# the resilience ledger


def test_resilience_report_aggregates_and_roundtrips(tmp_path):
    policy = _manual_policy(max_attempts=1, threshold=1)
    mediator = _three_source_mediator(policy=policy)
    server = _homepage_server()
    server.invalidate()
    with chaos.installed(
        FaultPlan().fail_always("wrapper.structured.wrap").fail_always("engine.bindings")
    ):
        mediator.ingest("data")
        server.get("/")  # error page (no prior good render)
    report = (
        ResilienceReport()
        .record_mediation(mediator)
        .record_server(server)
        .record_recoveries()
    )
    assert report.partial
    assert report.open_breakers == ["projects"]
    assert report.failed_sources and "projects" in report.failed_sources
    assert len(report.degradations) == 1
    lines = "\n".join(report.summary_lines())
    assert "partial: true" in lines
    assert "projects" in lines
    path = str(tmp_path / "resilience.json")
    report.save(path)
    loaded = ResilienceReport.load(path)
    assert loaded.as_dict() == report.as_dict()


def test_measure_site_folds_in_mediation_report():
    mediation = MediationReport(
        quarantine={"pubs": {"quarantined": 2, "admitted": 5}},
        failed_sources={"x": "boom"},
        skipped_sources=["y"],
    )
    stats = measure_site("site", parse(HOMEPAGE_QUERY), mediation=mediation)
    assert stats.quarantined_records == 2
    assert stats.missing_sources == 2


# ------------------------------------------------------------------ #
# CLI hardening


def test_cli_ingest_clean_source_exits_zero(tmp_path, capsys):
    bib = tmp_path / "pubs.bib"
    bib.write_text(_good_entry(1) + _good_entry(2), encoding="utf-8")
    out = tmp_path / "data.ddl"
    code = main(["ingest", "--source", f"pubs=bibtex:{bib}", "-o", str(out)])
    assert code == 0
    assert out.exists()
    err = capsys.readouterr().err
    assert "partial: false" in err


def test_cli_ingest_partial_exits_one_and_writes_report(tmp_path):
    bib = tmp_path / "pubs.bib"
    bib.write_text(_good_entry(1) + _bad_entry(0), encoding="utf-8")
    out = tmp_path / "data.ddl"
    rep = tmp_path / "resilience.json"
    code = main(
        [
            "ingest",
            "--source",
            f"pubs=bibtex:{bib}",
            "-o",
            str(out),
            "--report",
            str(rep),
        ]
    )
    assert code == 1
    assert out.exists()
    data = json.loads(rep.read_text(encoding="utf-8"))
    assert data["partial"] is True
    assert data["quarantine"]["pubs"]["quarantined"] == 1


def test_cli_ingest_blown_budget_exits_two_without_traceback(tmp_path, capsys):
    bib = tmp_path / "pubs.bib"
    bib.write_text(_bad_entry(0) + _bad_entry(1), encoding="utf-8")
    out = tmp_path / "data.ddl"
    code = main(
        [
            "ingest",
            "--source",
            f"pubs=bibtex:{bib}",
            "-o",
            str(out),
            "--max-errors",
            "0",
        ]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "error" in err
    assert "Traceback" not in err


def test_cli_ingest_bad_source_spec_exits_two(capsys):
    assert main(["ingest", "--source", "nonsense", "-o", "x.ddl"]) == 2
    err = capsys.readouterr().err
    assert "NAME=KIND:PATH" in err
    assert "Traceback" not in err


def test_cli_ingest_missing_file_exits_two(tmp_path, capsys):
    code = main(
        [
            "ingest",
            "--source",
            f"pubs=bibtex:{tmp_path / 'missing.bib'}",
            "-o",
            str(tmp_path / "out.ddl"),
        ]
    )
    assert code == 2
    assert "Traceback" not in capsys.readouterr().err


def test_cli_stats_resilience_prints_saved_report(tmp_path, capsys):
    bib = tmp_path / "pubs.bib"
    bib.write_text(_good_entry(1) + _bad_entry(0), encoding="utf-8")
    out = tmp_path / "data.ddl"
    rep = tmp_path / "resilience.json"
    main(
        [
            "ingest",
            "--source",
            f"pubs=bibtex:{bib}",
            "-o",
            str(out),
            "--report",
            str(rep),
        ]
    )
    capsys.readouterr()
    code = main(["stats", str(out), "--resilience", str(rep)])
    assert code == 0
    output = capsys.readouterr().out
    assert "resilience:" in output
    assert "quarantined records: 1" in output


# ------------------------------------------------------------------ #
# property tests: corrupted corpora and crash points

_suppress = [HealthCheck.function_scoped_fixture]


@given(st.lists(st.booleans(), min_size=1, max_size=20))
@settings(max_examples=40, deadline=None, suppress_health_check=_suppress)
def test_corrupted_bibtex_corpus_admits_exactly_wellformed(flags):
    text = "".join(
        _good_entry(i) if ok else _bad_entry(i) for i, ok in enumerate(flags)
    )
    wrapper = BibtexWrapper(text, source_name="fuzz")
    graph = wrapper.wrap(WrapPolicy.tolerant())  # must never raise
    good = sum(flags)
    assert len(graph.collection("Publications")) == good
    assert wrapper.last_quarantine.count == len(flags) - good
    assert wrapper.last_quarantine.admitted == good


@given(st.lists(st.integers(1, 4), min_size=0, max_size=15))
@settings(max_examples=40, deadline=None, suppress_health_check=_suppress)
def test_ragged_csv_corpus_admits_exactly_wellformed(widths):
    rows = [[f"v{i}_{j}" for j in range(w)] for i, w in enumerate(widths)]
    table = Table("T", ["a", "b"], rows, strict=False)
    wrapper = RelationalWrapper([table], source_name="fuzz")
    graph = wrapper.wrap(WrapPolicy.tolerant())  # must never raise
    good = sum(1 for w in widths if w == 2)
    assert len(graph.collection("T")) == good
    assert wrapper.last_quarantine.count == len(widths) - good


@given(st.sampled_from(_STORE_SITES), st.integers(1, 4), st.integers(1, 4))
@settings(max_examples=25, deadline=None, suppress_health_check=_suppress)
def test_store_killed_at_any_fault_point_stays_loadable(site, old_items, new_items):
    with tempfile.TemporaryDirectory() as directory:
        old = _item_graph("old", items=old_items)
        Repository(directory).store("data", old)
        new = _item_graph("new", items=new_items)
        with chaos.installed(FaultPlan().fail_always(site)):
            with pytest.raises(ChaosFault):
                Repository(directory).store("data", new)
        loaded = Repository(directory).fetch("data")
        assert ddl.dumps(loaded) == ddl.dumps(old)
        # and a clean retry completes the interrupted generation switch
        Repository(directory).store("data", new)
        assert ddl.dumps(Repository(directory).fetch("data")) == ddl.dumps(new)


# ------------------------------------------------------------------ #
# acceptance: end-to-end chaos


def test_chaos_acceptance_end_to_end(tmp_path):
    # ~10% of the bibliography is malformed, and the structured source
    # hard-fails at every wrap attempt
    text = generate_entries(10, seed=3) + _bad_entry(0)
    clock = ManualClock()
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=2, clock=clock),
        breaker_threshold=1,
        min_sources=1,
        clock=clock,
    )
    repository = Repository(str(tmp_path))
    mediator = Mediator(repository=repository, policy=policy)
    mediator.add_source("pubs", BibtexWrapper(text, source_name="pubs"))
    mediator.add_source(
        "people",
        RelationalWrapper(
            [Table("People", ["id", "name"], [["a", "Ann"], ["b", "Bob"]])],
            key_columns={"People": "id"},
            source_name="people",
        ),
    )
    mediator.add_source(
        "projects",
        StructuredFileWrapper(
            "%collection Projects\nname: strudel\n", source_name="projects"
        ),
    )
    for name in ("pubs", "people", "projects"):
        mediator.import_source(name)

    plan = FaultPlan.from_env(default_seed=1337).fail_always("wrapper.structured.wrap")
    with chaos.installed(plan):
        warehouse = mediator.ingest("data")

    # the warehouse was built from the survivors, marked partial
    report = mediator.last_report
    assert report.partial and not report.stale
    assert list(report.failed_sources) == ["projects"]
    assert report.quarantine["pubs"]["quarantined"] == 1
    assert report.quarantine["pubs"]["admitted"] == 10
    assert len(warehouse.collection("Publications")) == 10
    assert len(warehouse.collection("People")) == 2
    edges = list(warehouse.out_edges(Oid(PROVENANCE_OID)))
    assert ("partial", True) in [(l, t.value) for l, t in edges]

    # the degraded generation persisted crash-safely and reloads clean
    reloaded = Repository(str(tmp_path)).fetch("data")
    assert ddl.dumps(reloaded) == ddl.dumps(warehouse)

    # the breaker for the dead source opened (threshold 1)
    assert mediator.breaker_states()["projects"]["state"] == "open"

    # every derivable page of the site still builds and serves
    server = PageServer(parse(HOMEPAGE_QUERY), warehouse, homepage_templates())
    homepage = server.get("/")
    assert "<html>" in homepage
    for path in list(server.known_paths()):
        assert server.get(path)
    assert server.degradations == []

    # and the ledger reports exactly what degraded
    resilience = (
        ResilienceReport()
        .record_mediation(mediator)
        .record_server(server)
        .record_recoveries()
    )
    assert resilience.quarantined_records == 1
    assert resilience.open_breakers == ["projects"]
    assert resilience.partial
    summary = "\n".join(resilience.summary_lines())
    assert "quarantined records: 1" in summary
    assert "failed sources: 1" in summary
