"""Tests for the HTTP serving tier (repro.serve).

The load-bearing properties:

* pages served over HTTP are byte-identical to the statically
  generated site, including under concurrent load;
* a mid-load refresh never produces a torn mix -- every response
  labeled with generation G matches snapshot G exactly;
* degradation is surfaced as HTTP semantics (404 / 500 / 503 /
  200-with-degraded-header), never tracebacks or sentinels;
* shutdown is graceful: admitted requests complete.
"""

import http.client
import json
import threading
import time

import pytest

from repro import cli
from repro.core.regen import RegeneratingSite
from repro.graph import Oid
from repro.repository import ddl
from repro.resilience.chaos import ChaosFault, FaultPlan, install, uninstall
from repro.serve import (
    AdmissionControl,
    Generation,
    GenerationCache,
    PageEntry,
    Refresher,
    ServeCore,
    SiteServer,
)
from repro.struql import evaluate, parse
from repro.template import generate_site
from repro.workloads import HOMEPAGE_QUERY, bibliography_graph, homepage_templates


@pytest.fixture(scope="module")
def setup():
    data = bibliography_graph(12, seed=70)
    program = parse(HOMEPAGE_QUERY)
    return data, program


@pytest.fixture(autouse=True)
def _no_leftover_chaos():
    yield
    uninstall()


def _copy_graph(graph):
    return ddl.loads(ddl.dumps(graph), "copy")


def _fresh_core(setup, **kwargs):
    data, program = setup
    return ServeCore(program, _copy_graph(data), homepage_templates(), **kwargs)


def _get(server, path, method="GET"):
    """One request; returns (status, headers, body bytes)."""
    connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        connection.request(method, path)
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


def _static_reference(pages):
    """filename->html map as the server publishes it: /<name>, / for index."""
    reference = {}
    for filename, html in pages.items():
        body = html.encode("utf-8")
        reference["/" + filename] = body
        if filename == "index.html":
            reference["/"] = body
    return reference


# ------------------------------------------------------------------ #
# units: cache, admission


class TestGenerationCache:
    def test_current_before_publish_raises(self):
        with pytest.raises(RuntimeError):
            GenerationCache().current()

    def test_publish_swaps_atomically(self):
        cache = GenerationCache()
        first = Generation(1, 0)
        second = Generation(2, 1)
        assert cache.publish(first) is None
        assert cache.publish(second) is first
        assert cache.current() is second
        assert cache.stats()["published"] == 2

    def test_fill_is_idempotent(self):
        generation = Generation(1, 0, complete=False)
        entry = PageEntry(200, b"hello")
        generation.fill("/a", entry)
        generation.fill("/a", PageEntry(200, b"hello"))
        assert generation.lookup("/a") is entry
        assert generation.fills == 1
        assert generation.fill_races == 1

    def test_static_pages_mapping(self):
        generation = Generation.from_static_pages(
            1, 0, {"index.html": "<p>root</p>", "a.html": "<p>a</p>"}
        )
        assert generation.lookup("/").body == b"<p>root</p>"
        assert generation.lookup("/index.html").body == b"<p>root</p>"
        assert generation.lookup("/a.html").body == b"<p>a</p>"
        assert generation.lookup("/missing.html") is None


class TestAdmissionControl:
    def test_sheds_over_limit(self):
        admission = AdmissionControl(limit=2)
        assert admission.try_acquire() and admission.try_acquire()
        assert not admission.try_acquire()
        admission.release()
        assert admission.try_acquire()
        stats = admission.stats()
        assert stats["shed"] == 1
        assert stats["peak"] == 2

    def test_unlimited(self):
        admission = AdmissionControl(limit=None)
        assert all(admission.try_acquire() for _ in range(100))
        assert admission.stats()["shed"] == 0


# ------------------------------------------------------------------ #
# the HTTP tier


class TestHTTPServing:
    @pytest.fixture(scope="class")
    def server(self, setup):
        core = _fresh_core(setup)
        server = SiteServer(core, workers=2).start()
        yield server
        server.stop()

    def test_root_served(self, server):
        status, headers, body = _get(server, "/")
        assert status == 200
        assert b"<html>" in body
        assert headers["X-Strudel-Generation"] == "1"
        assert "X-Strudel-Degraded" not in headers

    def test_unknown_path_is_real_404(self, server):
        status, _, body = _get(server, "/no-such-page.html")
        assert status == 404
        assert b"404" in body and b"Traceback" not in body

    def test_stats_endpoint(self, server):
        status, _, body = _get(server, "/_stats")
        assert status == 200
        stats = json.loads(body)
        assert stats["core"]["mode"] == "static"
        assert stats["core"]["generations"]["current_generation"] == 1
        assert "refresher" in stats

    def test_health_and_paths(self, server):
        assert json.loads(_get(server, "/_health")[2]) == {"ok": True}
        paths = json.loads(_get(server, "/_paths")[2])
        assert "/" in paths and len(paths) > 5

    def test_served_bytes_match_static_build(self, setup, server):
        data, program = setup
        static = generate_site(
            evaluate(program, data), homepage_templates(), ["RootPage()"]
        )
        reference = _static_reference(static.pages)
        for path, expected in reference.items():
            status, _, body = _get(server, path)
            assert status == 200
            assert body == expected, path

    def test_concurrent_byte_identity(self, setup, server):
        """Many threads, keep-alive connections: every response equals
        the static build byte for byte."""
        data, program = setup
        static = generate_site(
            evaluate(program, data), homepage_templates(), ["RootPage()"]
        )
        reference = _static_reference(static.pages)
        paths = sorted(reference)
        failures = []

        def _client(offset):
            connection = http.client.HTTPConnection(
                server.host, server.port, timeout=10
            )
            try:
                for index in range(len(paths) * 2):
                    path = paths[(offset + index) % len(paths)]
                    connection.request("GET", path)
                    response = connection.getresponse()
                    body = response.read()
                    if response.status != 200 or body != reference[path]:
                        failures.append((path, response.status))
            finally:
                connection.close()

        threads = [threading.Thread(target=_client, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures


class TestRefreshUnderLoad:
    def test_no_torn_generations(self, setup):
        """Responses observed while edits publish mid-load always match
        the snapshot their generation header names -- never a mix."""
        data, program = setup
        core = _fresh_core(setup)
        server = SiteServer(core, workers=4).start()
        try:
            edits = [
                (
                    "pub-smoke-a",
                    [("title", "Torn Test A"), ("year", 1997),
                     ("author", "Serge Abiteboul"), ("category", "web")],
                ),
                (
                    "pub-smoke-b",
                    [("title", "Torn Test B"), ("year", 1996),
                     ("author", "Dan Suciu"), ("category", "languages")],
                ),
            ]
            # reference snapshots: an independent warm regenerator fed
            # the same edit sequence; generation N is after N-1 edits
            reference_site = RegeneratingSite(
                program, _copy_graph(data), homepage_templates(), ["RootPage()"]
            )
            references = {1: _static_reference(dict(reference_site.pages))}
            for index, (oid_name, attributes) in enumerate(edits):
                reference_site.add_object(
                    "Publications", attributes, oid=Oid(oid_name)
                )
                references[index + 2] = _static_reference(
                    dict(reference_site.pages)
                )

            observed = []
            observed_lock = threading.Lock()
            stop = threading.Event()

            def _client(worker):
                paths = sorted(references[1])
                connection = http.client.HTTPConnection(
                    server.host, server.port, timeout=10
                )
                try:
                    index = worker
                    while not stop.is_set():
                        path = paths[index % len(paths)]
                        index += 1
                        connection.request("GET", path)
                        response = connection.getresponse()
                        body = response.read()
                        generation = int(
                            response.getheader("X-Strudel-Generation")
                        )
                        with observed_lock:
                            observed.append((path, generation, body))
                finally:
                    connection.close()

            threads = [
                threading.Thread(target=_client, args=(i,)) for i in range(6)
            ]
            for thread in threads:
                thread.start()
            seen_generations = set()
            for oid_name, attributes in edits:
                time.sleep(0.15)
                ticket = server.submit_edit(
                    lambda regen, o=oid_name, a=attributes: regen.add_object(
                        "Publications", a, oid=Oid(o)
                    )
                )
                assert ticket.wait(10) and ticket.applied, ticket.error
                seen_generations.add(ticket.info["generation"])
            time.sleep(0.15)
            stop.set()
            for thread in threads:
                thread.join()

            assert seen_generations == {2, 3}
            torn = [
                (path, generation)
                for path, generation, body in observed
                if references[generation].get(path) != body
            ]
            assert not torn
            # the load actually spanned the swaps
            assert {generation for _, generation, _ in observed} >= {1, 3}
        finally:
            server.stop()

    def test_refresh_failure_keeps_last_known_good(self, setup):
        core = _fresh_core(setup)
        server = SiteServer(core, workers=2).start()
        try:
            before = _get(server, "/")[2]
            install(FaultPlan().fail_at("serve.refresh.apply", 1))
            ticket = server.submit_edit(
                lambda regen: regen.add_object(
                    "Publications", [("title", "Lost"), ("year", 1991),
                                     ("author", "Nobody")]
                )
            )
            assert ticket.wait(10)
            assert not ticket.applied
            uninstall()
            status, headers, body = _get(server, "/")
            assert status == 200
            assert body == before  # last-known-good bytes
            assert headers["X-Strudel-Degraded"] == "stale-generation"
            # the next successful edit heals through a full rebuild
            ticket = server.submit_edit(
                lambda regen: regen.add_object(
                    "Publications",
                    [("title", "Heal"), ("year", 1992),
                     ("author", "Peter Buneman"), ("category", "web")],
                )
            )
            assert ticket.wait(10) and ticket.applied
            assert ticket.info["coarse"]
            status, headers, _ = _get(server, "/")
            assert status == 200
            assert "X-Strudel-Degraded" not in headers
            assert core.rebuilds == 1
        finally:
            server.stop()

    def test_breaker_opens_after_repeated_failures(self, setup):
        core = _fresh_core(setup)
        refresher = Refresher(core, breaker_threshold=2, breaker_reset=60.0)
        refresher.start()
        try:
            install(FaultPlan().fail_always("serve.refresh.apply"))
            noop = lambda regen: None  # noqa: E731
            for _ in range(2):
                ticket = refresher.submit(noop)
                assert ticket.wait(10) and not ticket.applied
            ticket = refresher.submit(noop)
            assert ticket.wait(10)
            assert not ticket.applied
            assert "breaker" in ticket.error
            stats = refresher.stats()
            assert stats["breaker_state"] == "open"
            assert stats["edits_rejected"] == 1
        finally:
            uninstall()
            refresher.stop()


class TestOverloadAndShutdown:
    def test_sheds_with_503_when_draining(self, setup):
        core = _fresh_core(setup)
        server = SiteServer(core, workers=2).start()
        try:
            server.httpd.draining = True
            status, headers, body = _get(server, "/")
            assert status == 503
            assert headers["Retry-After"] == "1"
            assert b"503" in body
        finally:
            server.httpd.draining = False
            server.stop()

    def test_admission_limit_sheds_under_burst(self, setup):
        core = _fresh_core(setup)
        server = SiteServer(core, workers=1, admission_limit=1).start()
        try:
            results = []
            results_lock = threading.Lock()

            def _client():
                status, _, _ = _get(server, "/")
                with results_lock:
                    results.append(status)

            threads = [threading.Thread(target=_client) for _ in range(12)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert set(results) <= {200, 503}
            assert 200 in results  # some requests served
        finally:
            server.stop()

    def test_graceful_stop_completes_admitted_requests(self, setup):
        core = _fresh_core(setup)
        server = SiteServer(core, workers=2).start()
        errors = []
        done = []

        def _client(index):
            try:
                for _ in range(10):
                    status, _, body = _get(server, "/")
                    if status == 200 and not body:
                        errors.append("empty body")
                done.append(index)
            except (ConnectionError, http.client.HTTPException, OSError):
                done.append(index)  # refused after shutdown: fine

        threads = [threading.Thread(target=_client, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.1)
        assert server.stop(timeout=10)
        for thread in threads:
            thread.join()
        assert not errors
        assert len(done) == 4

    def test_stop_is_idempotent(self, setup):
        core = _fresh_core(setup)
        server = SiteServer(core, workers=1).start()
        assert server.stop()
        assert server.stop()


class TestDynamicMode:
    def test_dynamic_pages_match_static_build(self, setup):
        data, program = setup
        core = _fresh_core(setup, dynamic=True)
        server = SiteServer(core, workers=3).start()
        try:
            static = generate_site(
                evaluate(program, data), homepage_templates(), ["RootPage()"]
            )
            status, _, root = _get(server, "/")
            assert status == 200
            normalized = (
                root.decode("utf-8")
                .replace('href="/"', 'href="index.html"')
                .replace('href="/', 'href="')
            )
            assert normalized == static.pages["index.html"]
            # misses fill the generation: the second hit is cached
            before = core.worker_metrics().cache_hits
            _get(server, "/")
            assert core.worker_metrics().cache_hits == before + 1
        finally:
            server.stop()

    def test_dynamic_404(self, setup):
        core = _fresh_core(setup, dynamic=True)
        server = SiteServer(core, workers=1).start()
        try:
            status, _, _ = _get(server, "/nope.html")
            assert status == 404
        finally:
            server.stop()


class TestServeCLI:
    def test_serve_and_stats_cli(self, setup, tmp_path, capsys):
        import socket

        data, _ = setup
        (tmp_path / "data.ddl").write_text(ddl.dumps(data))
        (tmp_path / "site.struql").write_text(HOMEPAGE_QUERY)
        templates = tmp_path / "templates"
        templates.mkdir()
        names = {
            "rootpage": "RootPage__",
            "abstractspage": "AbstractsPage__",
            "yearpage": "YearPages",
            "categorypage": "CategoryPages",
            "paperpresentation": "Presentations",
            "abstractpage": "AbstractPages",
        }
        source = homepage_templates()
        for internal, out in names.items():
            (templates / f"{out}.tmpl").write_text(
                source.get(internal).source_text
            )
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        exit_codes = []

        def _run():
            exit_codes.append(
                cli.main(
                    [
                        "serve",
                        "--data", str(tmp_path / "data.ddl"),
                        "--query", str(tmp_path / "site.struql"),
                        "--templates", str(templates),
                        "--port", str(port),
                        "--workers", "2",
                        "--duration", "2.5",
                    ]
                )
            )

        thread = threading.Thread(target=_run)
        thread.start()
        try:
            deadline = time.monotonic() + 10
            status = None
            while time.monotonic() < deadline:
                try:
                    connection = http.client.HTTPConnection(
                        "127.0.0.1", port, timeout=5
                    )
                    connection.request("GET", "/")
                    status = connection.getresponse().status
                    connection.close()
                    break
                except OSError:
                    time.sleep(0.1)
            assert status == 200
            assert cli.main(["stats", "--serve", f"http://127.0.0.1:{port}"]) == 0
            out = capsys.readouterr().out
            assert "current_generation: 1" in out
            assert "workers: 2" in out
        finally:
            thread.join(timeout=15)
        assert exit_codes == [0]
