"""Unit tests for the click-time page server (repro.core.server)."""

import pytest

from repro.core import LazySiteGraph, PageServer, DynamicSite
from repro.errors import SiteDefinitionError
from repro.graph import Oid
from repro.struql import evaluate, parse
from repro.template import generate_site
from repro.workloads import (
    HOMEPAGE_QUERY,
    bibliography_graph,
    homepage_templates,
)


@pytest.fixture(scope="module")
def setup():
    data = bibliography_graph(12, seed=70)
    program = parse(HOMEPAGE_QUERY)
    return data, program


def _normalize(html: str) -> str:
    """Map server hrefs (/X.html, /) onto static filenames (X.html,
    index.html) for byte comparison."""
    return html.replace('href="/"', 'href="index.html"').replace('href="/', 'href="')


class TestLazySiteGraph:
    def test_nodes_materialize_on_touch(self, setup):
        data, program = setup
        lazy = LazySiteGraph(DynamicSite(program, data))
        root = lazy.register_instance(lazy.dynamic.roots()[0])
        assert lazy.expansions == 0
        labels = lazy.labels_of(root)
        assert lazy.expansions == 1
        assert "YearPage" in labels

    def test_expansion_matches_static_site(self, setup):
        data, program = setup
        static = evaluate(program, data)
        lazy = LazySiteGraph(DynamicSite(program, data))
        root = lazy.register_instance(lazy.dynamic.roots()[0])
        static_edges = sorted(
            (l, str(t)) for l, t in static.out_edges(Oid("RootPage()"))
        )
        lazy_edges = sorted((l, str(t)) for l, t in lazy.out_edges(root))
        assert static_edges == lazy_edges

    def test_collections_from_schema(self, setup):
        data, program = setup
        dynamic = DynamicSite(program, data)
        lazy = LazySiteGraph(dynamic)
        year = dynamic.instances_of("YearPage")[0]
        oid = lazy.register_instance(year)
        assert "YearPages" in lazy.collections_of(oid)

    def test_data_nodes_copy_from_data_graph(self, setup):
        data, program = setup
        lazy = LazySiteGraph(DynamicSite(program, data))
        member = data.collection("Publications")[0]
        assert lazy.attribute(member, "title") is not None

    def test_untouched_nodes_absent(self, setup):
        data, program = setup
        lazy = LazySiteGraph(DynamicSite(program, data))
        assert lazy.node_count == 0


class TestPageServer:
    def test_root_served_at_slash(self, setup):
        data, program = setup
        server = PageServer(program, data, homepage_templates())
        html = server.get("/")
        assert "<html>" in html and "<SFMT" not in html  # rendered, not raw

    def test_unknown_path(self, setup):
        data, program = setup
        server = PageServer(program, data, homepage_templates())
        with pytest.raises(KeyError):
            server.get("/nope.html")

    def test_links_are_servable(self, setup):
        data, program = setup
        server = PageServer(program, data, homepage_templates())
        for href in server.links_of("/"):
            assert server.get(href)

    def test_pages_match_static_generation(self, setup):
        """The dynamic server's correctness contract: every page equals
        the statically generated page for the same object."""
        data, program = setup
        server = PageServer(program, data, homepage_templates())
        static = generate_site(
            evaluate(program, data), homepage_templates(), ["RootPage()"]
        )
        assert _normalize(server.get("/")) == static.pages["index.html"]
        for href in server.links_of("/"):
            static_name = href.lstrip("/")
            if static_name in static.pages:
                assert _normalize(server.get(href)) == static.pages[static_name], href

    def test_work_is_proportional_to_clicks(self, setup):
        data, program = setup
        server = PageServer(program, data, homepage_templates())
        server.get("/")
        after_root = server.graph.expansions
        total_instances = sum(
            len(server.dynamic.instances_of(f))
            for f in server.dynamic.schema.functions
        )
        assert after_root < total_instances  # far from full materialization

    def test_requests_counted(self, setup):
        data, program = setup
        server = PageServer(program, data, homepage_templates())
        server.get("/")
        server.get("/")
        assert server.requests == 2

    def test_known_paths_grow(self, setup):
        data, program = setup
        server = PageServer(program, data, homepage_templates())
        before = len(server.known_paths())
        server.get("/")
        assert len(server.known_paths()) > before

    def test_multiple_roots(self, setup):
        data, program = setup
        server = PageServer(program, data, homepage_templates())
        paths = server.known_paths()
        assert "/" in paths
        assert any("AbstractsPage" in p for p in paths)

    def test_no_roots_raises(self):
        data = bibliography_graph(3, seed=1)
        with pytest.raises(SiteDefinitionError):
            PageServer(
                "where Publications(x) create P(x) collect Ps(P(x))",
                data,
                homepage_templates(),
            )


class TestGetResponse:
    """HTTP status mapping: get_response never raises and never
    answers with an in-process sentinel."""

    def test_unknown_path_is_404(self, setup):
        data, program = setup
        server = PageServer(program, data, homepage_templates())
        response = server.get_response("/no-such-page.html")
        assert response.status == 404
        assert response.kind == "not-found"
        assert "404" in response.body
        assert "Traceback" not in response.body
        # the in-process API still raises for compatibility
        with pytest.raises(KeyError):
            server.get("/no-such-page.html")

    def test_unknown_path_not_counted_as_request(self, setup):
        data, program = setup
        server = PageServer(program, data, homepage_templates())
        server.get_response("/no-such-page.html")
        assert server.requests == 0

    def test_healthy_render_is_200_ok(self, setup):
        data, program = setup
        server = PageServer(program, data, homepage_templates())
        response = server.get_response("/")
        assert (response.status, response.kind) == (200, "ok")
        assert response.body == server.get("/")

    def test_render_fault_without_stale_is_500(self, setup):
        from repro.resilience import chaos
        from repro.resilience.chaos import FaultPlan

        data, program = setup
        server = PageServer(program, data, homepage_templates())
        with chaos.installed(FaultPlan().fail_always("engine.bindings")):
            response = server.get_response("/")
        assert response.status == 500
        assert response.kind == "error-page"
        assert "Traceback" not in response.body

    def test_render_fault_with_stale_is_200_degraded(self, setup):
        from repro.resilience import chaos
        from repro.resilience.chaos import FaultPlan

        data, program = setup
        server = PageServer(program, data, homepage_templates())
        warm = server.get("/")
        server.invalidate()
        with chaos.installed(FaultPlan().fail_always("engine.bindings")):
            response = server.get_response("/")
        assert (response.status, response.kind) == (200, "stale")
        assert response.body == warm

    def test_strict_reraises_instead_of_mapping(self, setup):
        from repro.resilience import chaos
        from repro.resilience.chaos import ChaosFault, FaultPlan

        data, program = setup
        server = PageServer(program, data, homepage_templates())
        with chaos.installed(FaultPlan().fail_always("engine.bindings")):
            with pytest.raises(ChaosFault):
                server.get_response("/", strict=True)
