"""Unit tests for the site-management facade (repro.core.site, .versions, .stats)."""

import pytest

from repro.core import (
    SiteBuilder,
    SiteDefinition,
    derive_version,
    diff_definitions,
    measure_site,
)
from repro.errors import SiteDefinitionError
from repro.struql import parse
from repro.workloads import HOMEPAGE_QUERY, bibliography_graph, homepage_templates


@pytest.fixture
def builder():
    data = bibliography_graph(10, seed=6)
    builder = SiteBuilder(data)
    builder.define(
        SiteDefinition(
            "home",
            HOMEPAGE_QUERY,
            homepage_templates(),
            roots=["RootPage()"],
            constraints=[
                'forall X (YearPages(X) => exists Y (RootPage(Y) and Y -> "YearPage" -> X))'
            ],
        )
    )
    return builder


class TestDefinitions:
    def test_duplicate_name_rejected(self, builder):
        with pytest.raises(SiteDefinitionError):
            builder.define(
                SiteDefinition("home", HOMEPAGE_QUERY, homepage_templates())
            )

    def test_unknown_definition(self, builder):
        with pytest.raises(SiteDefinitionError):
            builder.definition("ghost")

    def test_definition_names(self, builder):
        assert builder.definition_names() == ["home"]

    def test_site_schema_accessor(self, builder):
        schema = builder.definition("home").site_schema()
        assert "YearPage" in schema.functions


class TestBuild:
    def test_full_pipeline(self, builder):
        built = builder.build("home")
        assert built.generated.page_count > 5
        assert built.site_graph.node_count > 10
        assert built.generated.dangling_links() == []

    def test_constraints_checked(self, builder):
        built = builder.build("home")
        assert all(bool(r) for r in built.constraint_results.values())

    def test_constraints_skippable(self, builder):
        built = builder.build("home", check_constraints=False)
        assert built.constraint_results == {}

    def test_site_graph_reuse(self, builder):
        site_graph = builder.site_graph("home")
        built = builder.build("home", site_graph=site_graph)
        assert built.site_graph is site_graph

    def test_data_graph_untouched(self, builder):
        before = builder.data_graph.stats()
        builder.build("home")
        assert builder.data_graph.stats() == before

    def test_write(self, builder, tmp_path):
        built = builder.build("home")
        paths = built.write(str(tmp_path))
        assert len(paths) == built.generated.page_count

    def test_default_roots_from_zero_arg_skolems(self):
        data = bibliography_graph(5, seed=1)
        builder = SiteBuilder(data)
        builder.define(
            SiteDefinition("home", HOMEPAGE_QUERY, homepage_templates())
        )  # no roots given
        built = builder.build("home")
        assert built.generated.page_count > 0

    def test_no_possible_roots_raises(self):
        data = bibliography_graph(5, seed=1)
        builder = SiteBuilder(data)
        templates = homepage_templates()
        builder.define(
            SiteDefinition(
                "odd",
                "where Publications(x) create P(x) collect Presentations(P(x))",
                templates,
            )
        )
        with pytest.raises(SiteDefinitionError):
            builder.build("odd")

    def test_dynamic_site_accessor(self, builder):
        dynamic = builder.dynamic_site("home")
        assert dynamic.roots()


class TestVersions:
    def test_template_only_version(self, builder):
        base = builder.definition("home")
        derived = derive_version(
            base, "external", template_overrides={"rootpage": "<html>external</html>"}
        )
        builder.define(derived)
        diff = diff_definitions(base, derived)
        assert diff.query_lines_added == 0
        assert diff.templates_changed == 1
        assert diff.changed_template_names == ["rootpage"]
        assert not diff.new_queries_needed

    def test_derived_version_builds(self, builder):
        base = builder.definition("home")
        derived = derive_version(
            base, "external", template_overrides={"rootpage": "<html>x</html>"}
        )
        builder.define(derived)
        site_graph = builder.site_graph("home")
        built = builder.build("external", site_graph=site_graph)
        assert built.pages["index.html"] == "<html>x</html>"

    def test_new_template_added_in_override(self, builder):
        base = builder.definition("home")
        derived = derive_version(
            base, "plus", template_overrides={"brand-new": "<p>new</p>"}
        )
        assert derived.templates.get("brand-new") is not None

    def test_query_version(self, builder):
        base = builder.definition("home")
        sports_like = derive_version(
            base, "filtered",
            query=HOMEPAGE_QUERY.replace(
                "where Publications(x), x -> l -> v",
                'where Publications(x), x -> "year" -> yy, yy = "1998", x -> l -> v',
            ),
        )
        diff = diff_definitions(base, sports_like)
        assert diff.query_lines_added == 1
        assert diff.templates_changed == 0

    def test_roots_and_constraints_inherited(self, builder):
        base = builder.definition("home")
        derived = derive_version(base, "copy")
        assert derived.roots == base.roots
        assert derived.constraints == base.constraints


class TestStats:
    def test_measure_site(self, builder):
        built = builder.build("home")
        stats = built.stats(sources=1)
        assert stats.query_lines == parse(HOMEPAGE_QUERY).line_count()
        assert stats.link_clauses == 11
        assert stats.template_count == 6
        assert stats.pages == built.generated.page_count
        assert stats.sources == 1

    def test_as_row_keys(self, builder):
        row = builder.build("home").stats().as_row()
        assert set(row) == {
            "site", "query lines", "link clauses", "templates",
            "template lines", "pages", "sources",
        }

    def test_measure_with_partial_artifacts(self):
        stats = measure_site("partial", parse(HOMEPAGE_QUERY))
        assert stats.pages == 0 and stats.query_lines > 0
