"""Unit tests for site schemas (repro.core.schema)."""

import pytest

from repro.core import NS, SiteSchema
from repro.struql import parse
from repro.workloads import HOMEPAGE_QUERY

FIG3_LIKE = """
create RootPage(), AbstractsPage()
link RootPage() -> "Abstract" -> AbstractsPage()
where Publications(x), x -> l -> v
create AbstractPage(x), PaperPresentation(x)
link PaperPresentation(x) -> l -> v,
     AbstractsPage() -> "Abstract" -> AbstractPage(x)
{
  where x -> "year" -> y
  create YearPage(y)
  link YearPage(y) -> "Paper" -> PaperPresentation(x),
       RootPage() -> "Year" -> YearPage(y)
  collect YearPages(YearPage(y))
}
"""


@pytest.fixture
def schema():
    return SiteSchema.from_program(parse(FIG3_LIKE))


class TestNodes:
    def test_one_node_per_skolem_function(self, schema):
        assert set(schema.functions) == {
            "RootPage", "AbstractsPage", "AbstractPage", "PaperPresentation",
            "YearPage",
        }

    def test_ns_present_when_variables_targeted(self, schema):
        assert NS in schema.nodes  # the l -> v link targets NS


class TestEdges:
    def test_edge_per_link_expression(self, schema):
        assert len(schema.edges) == 5

    def test_edge_labels(self, schema):
        labels = {(e.source, e.label, e.target) for e in schema.edges}
        assert ("RootPage", "Abstract", "AbstractsPage") in labels
        assert ("YearPage", "Paper", "PaperPresentation") in labels
        assert ("PaperPresentation", "l", NS) in labels

    def test_arc_variable_flag(self, schema):
        arc_edges = [e for e in schema.edges if e.label_is_variable]
        assert len(arc_edges) == 1
        assert arc_edges[0].label == "l"

    def test_nested_edge_carries_conjunction(self, schema):
        edge = next(e for e in schema.edges if e.label == "Paper")
        assert len(edge.query_names) == 2  # Q-outer and Q-nested

    def test_top_level_create_only_edge_has_empty_guard(self, schema):
        edge = next(e for e in schema.edges if e.label == "Abstract"
                    and e.source == "RootPage")
        assert edge.query_names == ()

    def test_edge_args(self, schema):
        edge = next(e for e in schema.edges if e.label == "Paper")
        assert edge.source_args == ("y",)
        assert edge.target_args == ("x",)

    def test_display_label_format(self, schema):
        edge = next(e for e in schema.edges if e.label == "Paper")
        rendered = edge.display_label()
        assert '"Paper"' in rendered and "[y]" in rendered and "[x]" in rendered


class TestCreations:
    def test_creation_guards(self, schema):
        year_creations = schema.creations_of("YearPage")
        assert len(year_creations) == 1
        assert len(year_creations[0].query_names) == 2
        root_creations = schema.creations_of("RootPage")
        assert root_creations[0].query_names == ()

    def test_creation_args(self, schema):
        assert schema.creations_of("AbstractPage")[0].args == ("x",)


class TestQueries:
    def test_edges_from(self, schema):
        assert {e.label for e in schema.edges_from("RootPage")} == {"Abstract", "Year"}

    def test_edges_to(self, schema):
        assert {e.source for e in schema.edges_to("PaperPresentation")} == {"YearPage"}

    def test_reachable_functions(self, schema):
        reachable = schema.reachable_functions("RootPage")
        assert "PaperPresentation" in reachable
        assert "AbstractPage" in reachable

    def test_functions_of_class_prefers_collections(self, schema):
        assert schema.functions_of_class("YearPages") == ["YearPage"]
        assert schema.functions_of_class("RootPage") == ["RootPage"]
        assert schema.functions_of_class("Nothing") == []


class TestRoundTripAndDisplay:
    def test_recover_link_expressions(self, schema):
        recovered = schema.recover_link_expressions()
        assert len(recovered) == 5
        assert any('RootPage() -> "Year" -> YearPage(y)' in line for line in recovered)

    def test_dot_output(self, schema):
        dot = schema.to_dot()
        assert dot.startswith("digraph")
        assert '"YearPage" -> "PaperPresentation"' in dot
        assert NS in dot

    def test_homepage_query_schema(self):
        schema = SiteSchema.from_program(parse(HOMEPAGE_QUERY))
        assert "CategoryPage" in schema.functions
        assert len(schema.edges) == 11
