"""SQLite backend: repository behavior and SQL-pushdown equivalence.

The load-bearing property is *replay equivalence*: for any graph, the
pushdown engine over the edge-triple schema must return the same
binding relation -- same rows, same order -- as the in-memory engine,
because site definitions, incremental maintenance, and the constraint
checker all assume deterministic bindings regardless of backend.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RepositoryError
from repro.graph import Graph, integer, real, string, url
from repro.mediator import Mediator
from repro.repository import Repository, SqlRepository, ddl, open_repository
from repro.repository.sql import SqlGraph
from repro.struql import (
    QueryEngine,
    SqlQueryEngine,
    clear_plan_cache,
    explain_pushdown,
    make_engine,
    parse_query,
)
from repro.wrappers import DdlWrapper


def _bindings(graph, text, **kwargs):
    clear_plan_cache()
    engine = make_engine(graph, **kwargs)
    return engine.bindings(parse_query(text).where), engine


# --------------------------------------------------------------------- #
# replay equivalence (hypothesis)

#: atoms drawn from a pool engineered to collide under coercion:
#: 1995 vs "1995", 10 vs 10.0 vs "10", 2.0 vs "2.0"
_ATOMS = st.sampled_from(
    [
        integer(1995),
        string("1995"),
        integer(10),
        real(10.0),
        string("10"),
        real(2.0),
        string("2.0"),
        string("web"),
        real(-3.25),
        url("http://example.org/a"),
    ]
)

_LABELS = st.sampled_from(["a", "b", "c"])


@st.composite
def _graphs(draw):
    g = Graph("h")
    count = draw(st.integers(min_value=2, max_value=6))
    nodes = [g.add_node(hint=f"n{i}") for i in range(count)]
    for index in draw(st.lists(st.integers(0, count - 1), max_size=6)):
        g.add_to_collection("Pool", nodes[index])
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, count - 1),
                _LABELS,
                st.one_of(st.integers(0, count - 1), _ATOMS),
            ),
            max_size=16,
        )
    )
    for src, label, target in edges:
        if isinstance(target, int):
            target = nodes[target]
        g.add_edge(nodes[src], label, target)
    return g


#: membership, edge joins, coercing comparisons, label variables,
#: alternation, star paths, negation, and predicate pushdown
_BATTERY = [
    "where Pool(P)",
    'where Pool(P), P -> "a" -> X',
    'where Pool(P), P -> "a" -> X, X = 10',
    'where Pool(P), P -> "a" -> X, X = "1995"',
    'where Pool(P), P -> "a" -> X, X != 2.0',
    'where Pool(P), P -> "a" -> X, X >= 2',
    "where P -> L -> V",
    'where Pool(P), P -> ("a"|"b") -> X',
    'where Pool(P), P -> "a"* -> Q, Pool(Q)',
    'where Pool(P), not(P -> "b" -> X)',
    'where Pool(P), P -> "a" -> X, isInteger(X)',
    'where Pool(P), P -> "a" -> X, isNumber(X)',
    "where Pool(P), P -> L -> V, isAtom(V)",
    'where Pool(P), Q = P, Q -> "b" -> Y',
    'where X -> "c" -> N',
]


@given(_graphs())
@settings(max_examples=30, deadline=None)
def test_replay_equivalence(mem):
    repository = SqlRepository()  # in-memory SQLite
    repository.store("h", mem, persist=False)
    sql = repository.fetch("h")
    # Both backends normalize edge-index order to replay (``edges()``)
    # order on store -- the DDL backend through serialize/parse, the
    # SQLite backend through bulk import -- so the replay normal form
    # ``mem.copy()`` is the baseline, not the interleaved original.
    baseline = mem.copy()
    pushdowns = 0
    for text in _BATTERY:
        conditions = parse_query(text).where
        clear_plan_cache()
        want = QueryEngine(baseline).bindings(conditions)
        clear_plan_cache()
        engine = SqlQueryEngine(sql, pushdown_cutoff=0.0)
        got = engine.bindings(conditions)
        assert got == want, text  # rows AND order
        pushdowns += engine.metrics.sql_pushdowns
    assert pushdowns > 0  # the battery must actually exercise pushdown


# --------------------------------------------------------------------- #
# directed corners the strategy cannot reach deterministically


def _corner_graph():
    g = Graph("c")
    a = g.add_node(hint="a")
    b = g.add_node(hint="b")
    c = g.add_node(hint="c")
    for node in (a, b, c):
        g.add_to_collection("Pool", node)
    g.add_edge(a, "ref", b)
    g.add_edge(b, "ref", c)
    g.add_edge(c, "ref", a)  # cycle for the star path
    g.add_edge(a, "year", integer(1995))
    g.add_edge(b, "year", string("1995"))
    g.add_edge(c, "year", real(1995.0))
    g.add_edge(a, "tag", string("keep"))
    return g


@pytest.fixture
def corner_pair():
    mem = _corner_graph()
    repository = SqlRepository()
    repository.store("c", mem, persist=False)
    return mem, repository.fetch("c")


@pytest.mark.parametrize(
    "text",
    [
        'where Pool(P), P -> "ref"* -> Q, Q -> "year" -> 1995',
        'where Pool(P), P -> ("ref"."ref") -> Q',
        'where Pool(P), not(P -> "tag" -> T)',
        'where Pool(P), P -> "year" -> Y, Pool(Q), Q -> "year" -> Y, P != Q',
    ],
    ids=["star-cycle", "concat", "negation", "coercing-self-join"],
)
def test_regular_path_and_negation_corners(corner_pair, text):
    mem, sql = corner_pair
    want, _ = _bindings(mem, text)
    got, engine = _bindings(sql, text, pushdown_cutoff=0.0)
    assert got == want
    assert isinstance(engine, SqlQueryEngine)


def test_pushdown_actually_happens(corner_pair):
    _, sql = corner_pair
    _, engine = _bindings(
        sql, 'where Pool(P), P -> "year" -> Y', pushdown_cutoff=0.0
    )
    assert engine.metrics.sql_pushdowns == 1
    assert engine.metrics.sql_pushed_conditions == 2
    assert engine.metrics.sql_fallbacks == 0
    assert "SQL[2 pushed]" in str(engine.last_operator_stats[0])


def test_fallback_reasons(corner_pair):
    _, sql = corner_pair
    text = 'where Pool(P), P -> "year" -> Y'
    _, engine = _bindings(sql, text, pushdown_cutoff=float("inf"))
    assert engine.metrics.sql_pushdowns == 0
    assert engine.metrics.sql_fallbacks == 1
    assert engine.last_pushdown.fallback_reason == "below cost cutoff"
    _, engine = _bindings(sql, text, pushdown_cutoff=0.0, optimize=False)
    assert engine.last_pushdown.fallback_reason == "ablation mode"
    _, engine = _bindings(sql, text, pushdown_cutoff=0.0, adaptive=True)
    assert engine.last_pushdown.fallback_reason == "adaptive mode"
    assert "adaptive mode" in explain_pushdown(engine)


def test_warm_plan_cache_hits(corner_pair):
    _, sql = corner_pair
    conditions = parse_query('where Pool(P), P -> "year" -> Y').where
    engine = SqlQueryEngine(sql, pushdown_cutoff=0.0)
    first = engine.bindings(conditions)
    assert engine.bindings(conditions) == first
    assert engine.plan_cache.stats()["sql_hits"] >= 1


def test_make_engine_dispatch(corner_pair):
    mem, sql = corner_pair
    assert isinstance(make_engine(sql), SqlQueryEngine)
    engine = make_engine(mem)
    assert isinstance(engine, QueryEngine)
    assert not isinstance(engine, SqlQueryEngine)


# --------------------------------------------------------------------- #
# repository interface


def test_roundtrip_and_reopen(tmp_path):
    mem = _corner_graph()
    SqlRepository(str(tmp_path)).store("c", mem)
    reopened = SqlRepository(str(tmp_path))
    assert "c" in reopened
    sql = reopened.fetch("c")
    assert isinstance(sql, SqlGraph)
    assert sql.stats() == mem.stats()
    assert list(sql.collection("Pool")) == list(mem.collection("Pool"))
    oid = mem.collection("Pool")[0]
    assert list(sql.out_edges(oid)) == list(mem.out_edges(oid))
    assert reopened.catalog()["c"]["nodes"] == mem.node_count
    assert reopened.file_size() > 0
    assert reopened.index_row_counts()["edges"] == mem.edge_count


def test_journal_delta(tmp_path):
    repository = SqlRepository(str(tmp_path))
    repository.store("c", _corner_graph())
    sql = repository.fetch("c")
    before = sql.epoch
    node = sql.add_node(hint="new")
    sql.add_edge(node, "tag", string("fresh"))
    sql.add_to_collection("Pool", node)
    delta = sql.delta_since(before)
    assert delta.nodes_added == [node]
    assert (node, "tag", string("fresh")) in delta.edges_added
    assert ("Pool", node) in delta.members_added


def test_rebuild_rolls_back_on_error(tmp_path):
    repository = SqlRepository(str(tmp_path))
    repository.store("c", _corner_graph())
    with pytest.raises(RuntimeError):
        with repository.rebuild("c") as fresh:
            fresh.add_node(hint="doomed")
            raise RuntimeError("abort the rebuild")
    assert repository.fetch("c").stats() == _corner_graph().stats()


def test_export_ddl(tmp_path):
    repository = SqlRepository(str(tmp_path / "db"))
    mem = _corner_graph()
    repository.store("c", mem)
    out = tmp_path / "c.ddl"
    repository.export_ddl("c", str(out))
    parsed = ddl.loads(out.read_text())
    assert parsed.stats() == mem.stats()


def test_open_repository_backend_selection(tmp_path):
    assert isinstance(open_repository(str(tmp_path), "sqlite"), SqlRepository)
    assert isinstance(open_repository(str(tmp_path), "ddl"), Repository)
    with pytest.raises(RepositoryError):
        open_repository(str(tmp_path), "oracle")


# --------------------------------------------------------------------- #
# mediator and CLI ride on either backend

_SOURCE = """
collection People
object mff { name: "Mary" login: "mff" }
object suciu { name: "Dan" login: "suciu" }
member People: mff, suciu
"""


def test_mediator_materializes_into_sqlite():
    results = {}
    for key, repository in (("ddl", Repository()), ("sqlite", SqlRepository())):
        mediator = Mediator(repository=repository)
        mediator.add_source("a", DdlWrapper(_SOURCE))
        mediator.import_collection("a", "People")
        warehouse = mediator.materialize()
        results[key] = {
            "stats": warehouse.stats(),
            "people": sorted(str(o) for o in warehouse.collection("People")),
        }
    assert results["sqlite"] == results["ddl"]


BIBTEX = """
@article{p1, title = {Alpha}, author = {Mary}, year = 1998}
@article{p2, title = {Beta}, author = {Dan}, year = 1997}
"""


@pytest.fixture
def data_file(tmp_path):
    from repro.cli import main

    bib = tmp_path / "pubs.bib"
    bib.write_text(BIBTEX)
    data = tmp_path / "data.ddl"
    assert main(["wrap", "bibtex", str(bib), "-o", str(data)]) == 0
    return data


def test_cli_stats_sqlite_backend(data_file, capsys):
    from repro.cli import main

    query = 'where Publications(p), p -> "year" -> y'
    code = main(
        ["stats", str(data_file), "--backend", "sqlite", "--query", query]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "backend: sqlite" in out
    assert "db file size:" in out
    assert "index rows:" in out
    assert "sql:" in out


def test_cli_bindings_backend_parity(data_file, capsys):
    from repro.cli import main

    query = 'where Publications(p), p -> "author" -> a'
    assert main(["bindings", "--data", str(data_file), query]) == 0
    memory_out = capsys.readouterr().out
    code = main(
        ["bindings", "--data", str(data_file), "--backend", "sqlite", query]
    )
    assert code == 0
    sqlite_out = capsys.readouterr().out
    assert sqlite_out == memory_out
