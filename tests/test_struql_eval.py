"""Unit tests for STRUQL evaluation: query stage and construction stage."""

import pytest

from repro.errors import ImmutableNodeError, StruqlEvaluationError
from repro.graph import Atom, AtomType, Graph, Oid, integer, string
from repro.struql import Metrics, QueryEngine, evaluate, parse, query_bindings


class TestWhereStage:
    def test_collection_generates(self, pub_graph):
        rows = query_bindings("where Publications(x) create P(x)", pub_graph)
        assert len(rows) == 3

    def test_edge_with_constant_label(self, pub_graph):
        rows = query_bindings('where Publications(x), x -> "year" -> y', pub_graph)
        assert len(rows) == 3
        assert all(isinstance(r["y"], Atom) for r in rows)

    def test_value_selection_with_coercion(self, pub_graph):
        # years are INTEGER atoms; the query writes a string literal
        rows = query_bindings(
            'where Publications(x), x -> "year" -> y, y = "1998"', pub_graph
        )
        assert len(rows) == 2

    def test_numeric_comparison(self, pub_graph):
        rows = query_bindings(
            'where Publications(x), x -> "year" -> y, y < 1998', pub_graph
        )
        assert len(rows) == 1

    def test_arc_variable_binds_label(self, pub_graph):
        rows = query_bindings("where Publications(x), x -> l -> v", pub_graph)
        labels = {r["l"] for r in rows}
        assert "title" in labels and "year" in labels
        assert all(isinstance(r["l"], str) for r in rows)

    def test_irregular_attributes_carry_over(self, pub_graph):
        rows = query_bindings('where Publications(x), x -> "journal" -> j', pub_graph)
        assert len(rows) == 1  # only the Strudel entry has a journal

    def test_negation_filters(self, pub_graph):
        rows = query_bindings(
            'where Publications(x), not(x -> "journal" -> j)', pub_graph
        )
        assert len(rows) == 2

    def test_negation_with_shared_variable(self, pub_graph):
        rows = query_bindings(
            'where Publications(x), x -> "year" -> y, not(y = "1998")', pub_graph
        )
        assert len(rows) == 1

    def test_bindings_are_a_set(self, pub_graph):
        # two authors on one pub produce one row after projection to x, y
        rows = query_bindings(
            'where Publications(x), x -> "author" -> a, x -> "year" -> y',
            pub_graph,
        )
        projected = {(str(r["x"]), str(r["y"])) for r in rows}
        assert len(rows) > len(projected)  # a is part of the row
        rows_xy = query_bindings('where Publications(x), x -> "year" -> y', pub_graph)
        assert len(rows_xy) == 3

    def test_equality_join_between_objects(self):
        graph = Graph()
        a, b = graph.add_node(), graph.add_node()
        graph.add_edge(a, "name", string("n"))
        graph.add_edge(b, "owner", string("n"))
        graph.add_to_collection("A", a)
        graph.add_to_collection("B", b)
        rows = query_bindings(
            'where A(x), B(y), x -> "name" -> n, y -> "owner" -> n', graph
        )
        assert len(rows) == 1

    def test_path_condition_star(self, chain_graph):
        graph, (a, b, c) = chain_graph
        rows = query_bindings("where Roots(p), p -> * -> q", graph)
        reached = {r["q"] for r in rows}
        assert {a, b, c} <= reached

    def test_path_condition_reverse_direction(self, chain_graph):
        graph, (a, b, c) = chain_graph
        rows = query_bindings('where Roots(p), q -> "next"."next" -> r, Roots(q)', graph)
        assert len(rows) == 1

    def test_empty_where_yields_single_row(self, pub_graph):
        engine = QueryEngine(pub_graph)
        assert engine.bindings([]) == [{}]

    def test_unknown_collection_empty(self, pub_graph):
        assert query_bindings("where Nope(x)", pub_graph) == []

    def test_predicate_on_unbound_raises_in_naive_mode(self, pub_graph):
        from repro.struql import parse_query

        query = parse_query("where isImageFile(q), Publications(q)")
        engine = QueryEngine(pub_graph, optimize=False)
        with pytest.raises(StruqlEvaluationError):
            engine.bindings(query.where)

    def test_optimizer_reorders_same_query(self, pub_graph):
        from repro.struql import parse_query

        query = parse_query("where isImageFile(q), Publications(q)")
        engine = QueryEngine(pub_graph, optimize=True)
        assert engine.bindings(query.where) == []

    def test_metrics_counted(self, pub_graph):
        engine = QueryEngine(pub_graph)
        engine.bindings(parse('where Publications(x), x -> "year" -> y').queries[0].where)
        assert engine.metrics.conditions_evaluated == 2
        assert engine.metrics.bindings_produced >= 3


class TestNaiveVsOptimized:
    QUERIES = [
        'where Publications(x), x -> "year" -> y, y = "1998"',
        "where Publications(x), x -> l -> v",
        'where Publications(x), x -> "author" -> a, x -> "year" -> y, y < 1998',
        'where Publications(x), not(x -> "journal" -> j)',
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_same_bindings(self, pub_graph, query):
        def canon(rows):
            return sorted(
                tuple(sorted((k, str(v)) for k, v in row.items())) for row in rows
            )

        optimized = query_bindings(query, pub_graph)
        naive = query_bindings(query, pub_graph, optimize=False, use_indexes=False)
        assert canon(optimized) == canon(naive)

    def test_naive_examines_more_edges(self, pub_graph):
        from repro.struql import parse_query

        query = parse_query('where Publications(x), x -> "year" -> y')
        fast = QueryEngine(pub_graph)
        fast.bindings(query.where)
        slow = QueryEngine(pub_graph, optimize=False, use_indexes=False)
        slow.bindings(query.where)
        assert slow.metrics.edges_examined > fast.metrics.edges_examined


class TestConstruction:
    def test_create_produces_skolem_nodes(self, pub_graph):
        result = evaluate("where Publications(x) create P(x)", pub_graph)
        assert result.node_count == 3
        assert all(oid.name.startswith("P(") for oid in result.nodes())

    def test_skolem_identity_within_query(self, pub_graph):
        result = evaluate(
            'where Publications(x), x -> "author" -> a create P(x)', pub_graph
        )
        assert result.node_count == 3  # one P(x) per pub despite author rows

    def test_link_copies_attributes(self, pub_graph):
        result = evaluate(
            "where Publications(x), x -> l -> v create P(x) link P(x) -> l -> v",
            pub_graph,
        )
        assert result.edge_count == pub_graph.edge_count

    def test_collect(self, pub_graph):
        result = evaluate(
            "where Publications(x) create P(x) collect Out(P(x))", pub_graph
        )
        assert result.collection_cardinality("Out") == 3

    def test_zero_arg_skolem_single_node(self, pub_graph):
        result = evaluate(
            'where Publications(x) create Root(), P(x) link Root() -> "p" -> P(x)',
            pub_graph,
        )
        roots = [o for o in result.nodes() if o.name == "Root()"]
        assert len(roots) == 1
        assert len(result.targets(roots[0], "p")) == 3

    def test_constant_link_target(self, pub_graph):
        result = evaluate(
            'where Publications(x) create P(x) link P(x) -> "kind" -> "paper"',
            pub_graph,
        )
        member = next(iter(result.nodes()))
        assert str(result.attribute(member, "kind")) == "paper"

    def test_skolem_over_label_value(self, pub_graph):
        result = evaluate(
            "where Publications(x), x -> l -> v create L(l)", pub_graph
        )
        names = {o.name for o in result.nodes()}
        assert "L('title')" in names

    def test_link_from_existing_node_rejected(self, pub_graph):
        with pytest.raises(ImmutableNodeError):
            evaluate(
                'where Publications(x) link x -> "extra" -> "v"',
                pub_graph,
            )

    def test_link_to_data_node_imports_subgraph(self, pub_graph):
        result = evaluate(
            'where Publications(x) create Root() link Root() -> "pub" -> x',
            pub_graph,
        )
        member = pub_graph.collection("Publications")[0]
        assert result.has_node(member)
        assert result.attribute(member, "title") is not None  # deep import

    def test_collect_data_node(self, pub_graph):
        result = evaluate("where Publications(x) collect Kept(x)", pub_graph)
        assert result.collection_cardinality("Kept") == 3

    def test_source_graph_unchanged(self, pub_graph):
        before = pub_graph.stats()
        evaluate(
            "where Publications(x), x -> l -> v create P(x) link P(x) -> l -> v",
            pub_graph,
        )
        assert pub_graph.stats() == before

    def test_metrics_construction_counts(self, pub_graph):
        metrics = Metrics()
        evaluate(
            "where Publications(x) create P(x) collect Out(P(x))",
            pub_graph,
            metrics=metrics,
        )
        assert metrics.nodes_created == 3


class TestNestedBlocks:
    def test_block_extends_outer_bindings(self, pub_graph):
        result = evaluate(
            """
            where Publications(x) create P(x)
            { where x -> "year" -> y create Y(y) link Y(y) -> "p" -> P(x) }
            """,
            pub_graph,
        )
        years = [o for o in result.nodes() if o.name.startswith("Y(")]
        assert len(years) == 2  # 1998 and 1995

    def test_block_can_reference_outer_skolems(self, pub_graph):
        result = evaluate(
            """
            create Root()
            where Publications(x) create P(x)
            { where x -> "year" -> y link Root() -> "year" -> P(x) }
            """,
            pub_graph,
        )
        root = Oid("Root()")
        assert len(result.targets(root, "year")) == 3

    def test_textonly_copy(self, chain_graph):
        graph, (a, b, c) = chain_graph
        result = evaluate(
            """
            where Roots(p), p -> * -> q, q -> l -> q', not(isImageFile(q'))
            create New(p), New(q), New(q')
            link New(q) -> l -> New(q')
            collect TextOnlyRoot(New(p))
            """,
            graph,
        )
        assert result.collection_cardinality("TextOnlyRoot") == 1
        # the image edge is gone; the chain structure is copied
        assert "figure" not in result.labels()
        assert "next" in result.labels()


class TestComposition:
    def test_programs_share_skolems(self, pub_graph):
        result = evaluate(
            """
            where Publications(x) create P(x)
            where Publications(x), x -> "title" -> t link P(x) -> "title" -> t
            """,
            pub_graph,
        )
        assert result.node_count == 3
        assert result.label_cardinality("title") == 3

    def test_into_existing_graph(self, pub_graph):
        first = evaluate("where Publications(x) create P(x)", pub_graph)
        evaluate(
            'where Publications(x), x -> "title" -> t link P(x) -> "t" -> t',
            pub_graph,
            into=first,
        )
        assert first.label_cardinality("t") == 3

    def test_self_composition_navbar(self, pub_graph):
        """The suciu example: query the site graph and extend it."""
        site = evaluate(
            "where Publications(x) create Page(x) collect Pages(Page(x))",
            pub_graph,
        )
        evaluate(
            """
            create NavBar()
            where Pages(p)
            link NavBar() -> "entry" -> p
            """,
            site,
            into=site,
        )
        nav = Oid("NavBar()")
        assert len(site.targets(nav, "entry")) == 3

    def test_composition_respects_immutability_of_data_nodes(self, pub_graph):
        site = evaluate("where Publications(x) collect Kept(x)", pub_graph)
        with pytest.raises(ImmutableNodeError):
            evaluate(
                'where Kept(x) link x -> "extra" -> "v"', site, into=site
            )
