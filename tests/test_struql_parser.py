"""Unit tests for the STRUQL lexer and parser."""

import pytest

from repro.errors import StruqlSemanticError, StruqlSyntaxError
from repro.struql import (
    AnyLabel,
    CollectionCond,
    ComparisonCond,
    Concat,
    Const,
    EdgeCond,
    LabelIs,
    NotCond,
    PathCond,
    PredicateCond,
    SkolemTerm,
    Star,
    Var,
    parse,
    parse_query,
    register_label_predicate,
)
from repro.struql.lexer import tokenize


class TestLexer:
    def test_arrow(self):
        kinds = [t.kind for t in tokenize("x -> y")]
        assert kinds == ["ident", "arrow", "ident"]

    def test_primed_identifier(self):
        tokens = tokenize("q'")
        assert tokens[0].text == "q'"

    def test_string_with_escape(self):
        tokens = tokenize(r'"a\"b"')
        assert tokens[0].text == 'a"b'

    def test_comments_stripped(self):
        assert tokenize("x // comment\ny # another") == tokenize("x\ny")

    def test_comparison_operators(self):
        texts = [t.text for t in tokenize("a != b <= c >= d < e > f = g")]
        assert "!=" in texts and "<=" in texts and ">=" in texts

    def test_numbers(self):
        tokens = tokenize("1998 4.5")
        assert [t.kind for t in tokens] == ["number", "number"]

    def test_position_tracking(self):
        token = tokenize("  abc")[0]
        assert token.line == 1 and token.column == 3

    def test_bad_character(self):
        with pytest.raises(StruqlSyntaxError):
            tokenize("x @ y")


class TestConditions:
    def test_collection(self):
        query = parse_query("where Publications(x) create P(x)")
        assert query.where == [CollectionCond("Publications", Var("x"))]

    def test_quoted_collection_name(self):
        query = parse_query('where "src.People"(x) create P(x)')
        assert query.where[0].collection == "src.People"

    def test_predicate_recognized(self):
        query = parse_query("where Root(p), isImageFile(p) create N(p)")
        assert isinstance(query.where[1], PredicateCond)

    def test_single_edge_with_constant_label(self):
        query = parse_query('where x -> "year" -> y create P(x)')
        condition = query.where[0]
        assert isinstance(condition, EdgeCond)
        assert condition.label == "year"

    def test_arc_variable(self):
        query = parse_query("where x -> l -> y create P(x)")
        condition = query.where[0]
        assert isinstance(condition, EdgeCond)
        assert condition.label == Var("l")

    def test_star_is_path(self):
        query = parse_query("where x -> * -> y create P(x)")
        condition = query.where[0]
        assert isinstance(condition, PathCond)
        assert condition.path == Star(AnyLabel())

    def test_concat_path(self):
        query = parse_query('where x -> "a"."b" -> y create P(x)')
        assert query.where[0].path == Concat((LabelIs("a"), LabelIs("b")))

    def test_alternation_and_star_precedence(self):
        query = parse_query('where x -> ("a"|"b")."c"* -> y create P(x)')
        path = query.where[0].path
        assert isinstance(path, Concat)
        assert isinstance(path.parts[1], Star)

    def test_true_is_any_label(self):
        query = parse_query("where x -> true -> y create P(x)")
        assert query.where[0].path == AnyLabel()

    def test_registered_label_predicate_is_path(self):
        unregister = register_label_predicate("isName", lambda l: l.startswith("n"))
        try:
            query = parse_query("where x -> isName -> y create P(x)")
            assert isinstance(query.where[0], PathCond)
        finally:
            unregister()

    def test_comparison_to_string(self):
        query = parse_query('where x -> "y" -> y, y = "1998" create P(x)')
        condition = query.where[1]
        assert isinstance(condition, ComparisonCond)
        assert condition.op == "="

    def test_comparison_number_literal(self):
        query = parse_query('where x -> "y" -> y, y < 5 create P(x)')
        assert isinstance(query.where[1].right, Const)

    def test_negation(self):
        query = parse_query("where Root(p), not(isImageFile(p)) create N(p)")
        assert isinstance(query.where[1], NotCond)

    def test_negation_of_conjunction(self):
        query = parse_query(
            'where Root(p), not(p -> "a" -> q, isImageFile(q)) create N(p)'
        )
        assert len(query.where[1].inner) == 2

    def test_primed_variables(self):
        query = parse_query("where x -> l -> q' create N(q')")
        assert query.where[0].target == Var("q'")


class TestConstruction:
    def test_create_terms(self):
        query = parse_query("where Pubs(x) create RootPage(), AbstractPage(x)")
        assert query.create == [
            SkolemTerm("RootPage", ()),
            SkolemTerm("AbstractPage", (Var("x"),)),
        ]

    def test_link_clause(self):
        query = parse_query(
            'where Pubs(x) create P(x) link P(x) -> "title" -> x'
        )
        link = query.link[0]
        assert link.source == SkolemTerm("P", (Var("x"),))
        assert link.label == "title"
        assert link.target == Var("x")

    def test_link_with_arc_variable_label(self):
        query = parse_query("where Pubs(x), x -> l -> v create P(x) link P(x) -> l -> v")
        assert query.link[0].label == Var("l")

    def test_link_constant_target(self):
        query = parse_query('where Pubs(x) create P(x) link P(x) -> "kind" -> "paper"')
        assert isinstance(query.link[0].target, Const)

    def test_collect_with_skolem(self):
        query = parse_query("where Pubs(x) create P(x) collect Out(P(x))")
        assert query.collect[0].collection == "Out"
        assert query.collect[0].node == SkolemTerm("P", (Var("x"),))

    def test_collect_with_variable(self):
        query = parse_query("where Pubs(x) collect Out(x)")
        assert query.collect[0].node == Var("x")

    def test_nested_skolem_argument_rejected(self):
        with pytest.raises(StruqlSyntaxError):
            parse_query("where Pubs(x) create F(G(x))")


class TestBlocksAndPrograms:
    def test_nested_block(self):
        query = parse_query(
            """
            where Pubs(x) create P(x)
            { where x -> "year" -> y create Y(y) link Y(y) -> "p" -> P(x) }
            """
        )
        assert len(query.blocks) == 1
        assert query.blocks[0].create == [SkolemTerm("Y", (Var("y"),))]

    def test_deeply_nested(self):
        query = parse_query(
            """
            where Pubs(x) create P(x)
            { where x -> "a" -> a create A(a)
              { where a -> "b" -> b create B(b) } }
            """
        )
        assert query.blocks[0].blocks[0].create[0].function == "B"

    def test_block_names_depth_first(self):
        query = parse_query(
            """
            where Pubs(x) create P(x)
            { where x -> "a" -> a create A(a) }
            { where x -> "b" -> b create B(b) }
            """
        )
        assert query.name == "Q1"
        assert [b.name for b in query.blocks] == ["Q2", "Q3"]

    def test_program_with_multiple_queries(self):
        program = parse(
            """
            create Root()
            where Pubs(x) create P(x) link Root() -> "p" -> P(x)
            where Pubs(x), x -> "year" -> y create Y(y) link Y(y) -> "p" -> P(x)
            """
        )
        assert len(program.queries) == 3

    def test_out_of_order_clause_starts_new_query(self):
        program = parse("create A() create B()")
        assert len(program.queries) == 2

    def test_line_count_skips_comments_and_blanks(self):
        program = parse("// hi\n\ncreate A()\n")
        assert program.line_count() == 1

    def test_link_clause_count_includes_blocks(self):
        query = parse_query(
            """
            where Pubs(x) create P(x) link P(x) -> "a" -> x
            { where x -> "y" -> y create Y(y) link Y(y) -> "b" -> P(x), Y(y) -> "c" -> y }
            """
        )
        assert query.link_clause_count() == 3

    def test_skolem_functions_listing(self):
        program = parse(
            'where Pubs(x) create P(x) link P(x) -> "n" -> Q(x) collect C(R(x))'
        )
        assert program.skolem_functions() == ["P", "Q", "R"]


class TestValidation:
    def test_unbound_create_variable(self):
        with pytest.raises(StruqlSemanticError):
            parse("where Pubs(x) create P(y)")

    def test_unbound_link_variable(self):
        with pytest.raises(StruqlSemanticError):
            parse('where Pubs(x) create P(x) link P(x) -> "a" -> z')

    def test_nested_block_sees_outer_scope(self):
        parse(
            """
            where Pubs(x) create P(x)
            { where x -> "y" -> y link P(x) -> "year" -> y }
            """
        )

    def test_unbound_in_nested_block(self):
        with pytest.raises(StruqlSemanticError):
            parse(
                """
                where Pubs(x) create P(x)
                { where x -> "y" -> y link P(z) -> "year" -> y }
                """
            )


class TestParserErrors:
    def test_empty_text(self):
        with pytest.raises(StruqlSyntaxError):
            parse("")

    def test_garbage_start(self):
        with pytest.raises(StruqlSyntaxError):
            parse("banana Pubs(x)")

    def test_missing_arrow(self):
        with pytest.raises(StruqlSyntaxError):
            parse('where x -> "a" y create P(x)')

    def test_unclosed_block(self):
        with pytest.raises(StruqlSyntaxError):
            parse("where Pubs(x) create P(x) { where x -> l -> v create Q(x)")

    def test_parse_query_rejects_programs(self):
        with pytest.raises(StruqlSyntaxError):
            parse_query("create A() create B()")

    def test_edge_source_must_be_variable(self):
        with pytest.raises(StruqlSyntaxError):
            parse('where "lit" -> "a" -> y create P(y)')


class TestRoundTrip:
    def test_path_condition_round_trip(self):
        text = 'where Roots(p), p -> ("a"|"b")."c"* -> q, p -> * -> r create N(p)'
        query = parse_query(text)
        assert parse_query(str(query)).where == query.where

    def test_negation_round_trip(self):
        text = 'where Roots(p), not(p -> "a" -> q, isImageFile(q)) create N(p)'
        query = parse_query(text)
        assert parse_query(str(query)).where == query.where

    def test_comparison_round_trip(self):
        text = 'where Roots(p), p -> "y" -> y, y >= 1995, y != "x" create N(p)'
        query = parse_query(text)
        assert parse_query(str(query)).where == query.where

    def test_format_reparses(self):
        text = """
        where Publications(x), x -> l -> v, not(isImageFile(v))
        create P(x)
        link P(x) -> l -> v, P(x) -> "kind" -> "pub"
        collect Out(P(x))
        { where x -> "year" -> y create Y(y) link Y(y) -> "p" -> P(x) }
        """
        query = parse_query(text)
        reparsed = parse_query(str(query))
        assert reparsed.where == query.where
        assert reparsed.create == query.create
        assert reparsed.link == query.link
        assert reparsed.collect == query.collect
        assert len(reparsed.blocks) == len(query.blocks)
        assert reparsed.blocks[0].link == query.blocks[0].link


class TestSourceSpans:
    def test_syntax_error_carries_position(self):
        with pytest.raises(StruqlSyntaxError) as info:
            parse('create Root()\nwhere Pubs(x), x -> "a" y\ncreate P(x)')
        assert info.value.line == 2
        assert info.value.column > 0
        assert "(line 2, column" in str(info.value)

    def test_semantic_error_carries_position(self):
        with pytest.raises(StruqlSemanticError) as info:
            parse('where Pubs(x)\ncreate P(x)\nlink P(x) -> "a" -> z')
        assert info.value.line == 3
        assert "(line 3, column" in str(info.value)

    def test_conditions_carry_spans(self):
        program = parse(
            'where Pubs(x),\n      x -> "year" -> y\ncreate P(x)'
        )
        first, second = program.queries[0].where
        assert (first.line, first.column) == (1, 7)
        assert (second.line, second.column) == (2, 7)

    def test_skolem_terms_carry_spans(self):
        program = parse(
            "where Pubs(x)\ncreate P(x)\nlink P(x) -> \"a\" -> x"
        )
        block = program.queries[0]
        assert block.create[0].line == 2
        assert block.link[0].source.line == 3

    def test_spans_do_not_affect_equality(self):
        one = parse('where Pubs(x), x -> "a" -> y create P(x)')
        two = parse('where Pubs(x),\n  x -> "a" -> y\ncreate P(x)')
        assert one.queries[0].where == two.queries[0].where
        assert one.queries[0].create == two.queries[0].create
