"""Unit tests for template rendering (repro.template.eval)."""

import pytest

from repro.errors import TemplateEvaluationError
from repro.graph import (
    Graph,
    Oid,
    html_file,
    image_file,
    integer,
    postscript_file,
    string,
    text_file,
    url,
)
from repro.template import Renderer, TemplateSet, parse_template


@pytest.fixture
def site():
    graph = Graph()
    page = graph.add_node(Oid("Page()"))
    graph.add_edge(page, "title", string("Hello <World>"))
    graph.add_edge(page, "year", integer(1998))
    graph.add_edge(page, "author", string("Mary"))
    graph.add_edge(page, "author", string("Dan"))
    graph.add_edge(page, "home", url("http://example.org"))
    graph.add_edge(page, "photo", image_file("me.gif"))
    graph.add_edge(page, "paper", postscript_file("p.ps"))
    graph.add_edge(page, "body", text_file("Plain body text"))
    graph.add_edge(page, "widget", html_file("<b>bold</b>"))
    child = graph.add_node(Oid("Child()"))
    graph.add_edge(child, "title", string("The Child"))
    graph.add_edge(page, "child", child)
    graph.add_edge(page, "status", string("public"))
    return graph, page, child


def render(graph, obj, text, registry=None):
    renderer = Renderer(graph, registry=registry)
    return renderer.render(parse_template(text), obj)


class TestSfmtAtoms:
    def test_string_escaped(self, site):
        graph, page, _ = site
        assert render(graph, page, "<SFMT title>") == "Hello &lt;World&gt;"

    def test_integer(self, site):
        graph, page, _ = site
        assert render(graph, page, "<SFMT year>") == "1998"

    def test_url_becomes_anchor(self, site):
        graph, page, _ = site
        out = render(graph, page, "<SFMT home>")
        assert out == '<a href="http://example.org">http://example.org</a>'

    def test_image(self, site):
        graph, page, _ = site
        assert render(graph, page, "<SFMT photo>") == '<img src="me.gif" alt="me.gif">'

    def test_postscript(self, site):
        graph, page, _ = site
        assert render(graph, page, "<SFMT paper>") == '<a href="p.ps">[PostScript]</a>'

    def test_text_file_renders_payload(self, site):
        graph, page, _ = site
        assert render(graph, page, "<SFMT body>") == "Plain body text"

    def test_html_file_link_by_default(self, site):
        graph, page, _ = site
        assert "[HTML]" in render(graph, page, "<SFMT widget>")

    def test_html_file_raw_when_embedded(self, site):
        graph, page, _ = site
        assert render(graph, page, "<SFMT widget EMBED>") == "<b>bold</b>"

    def test_link_directive_on_string(self, site):
        graph, page, _ = site
        out = render(graph, page, "<SFMT status LINK>")
        assert out == '<a href="public">public</a>'

    def test_missing_attribute_is_empty(self, site):
        graph, page, _ = site
        assert render(graph, page, "<SFMT nothing>") == ""

    def test_first_value_without_enum(self, site):
        graph, page, _ = site
        assert render(graph, page, "<SFMT author>") == "Mary"


class TestSfmtEnumeration:
    def test_enum_with_delim(self, site):
        graph, page, _ = site
        assert render(graph, page, '<SFMT author ENUM DELIM="; ">') == "Mary; Dan"

    def test_enum_default_delim(self, site):
        graph, page, _ = site
        assert render(graph, page, "<SFMT author ENUM>") == "Mary, Dan"

    def test_ul(self, site):
        graph, page, _ = site
        out = render(graph, page, "<SFMT author UL>")
        assert out == "<ul><li>Mary</li><li>Dan</li></ul>"

    def test_ol(self, site):
        graph, page, _ = site
        assert render(graph, page, "<SFMT author OL>").startswith("<ol>")

    def test_order_ascending(self, site):
        graph, page, _ = site
        assert render(graph, page, "<SFMT author ENUM ORDER=ascend>") == "Dan, Mary"

    def test_order_descending(self, site):
        graph, page, _ = site
        assert render(graph, page, "<SFMT author ENUM ORDER=descend>") == "Mary, Dan"

    def test_order_with_key_over_objects(self):
        graph = Graph()
        root = graph.add_node(Oid("Root()"))
        for year in (1997, 1995, 1998):
            child = graph.add_node(Oid(f"Y({year})"))
            graph.add_edge(child, "Year", integer(year))
            graph.add_edge(root, "page", child)
        out = Renderer(graph).render(
            parse_template("<SFMT page ENUM ORDER=ascend KEY=Year>"), root
        )
        # anchor text prefers the Year naming attribute over the oid name
        assert out == "1995, 1997, 1998"

    def test_numeric_key_sorting_not_lexicographic(self):
        graph = Graph()
        root = graph.add_node(Oid("Root()"))
        for rank in (2, 10, 1):
            child = graph.add_node(Oid(f"R{rank}"))
            graph.add_edge(child, "rank", integer(rank))
            graph.add_edge(root, "item", child)
        out = Renderer(graph).render(
            parse_template("<SFMT item ENUM ORDER=ascend KEY=rank>"), root
        )
        assert out == "R1, R2, R10"


class TestObjects:
    def test_object_without_registry_renders_anchor_text(self, site):
        graph, page, child = site
        assert render(graph, page, "<SFMT child>") == "The Child"

    def test_object_with_registry_renders_link(self, site):
        graph, page, child = site
        templates = TemplateSet()
        templates.add("child", "<h1><SFMT title></h1>")
        templates.for_object("Child()", "child")

        class Registry:
            def href_for(self, oid):
                return "child.html" if oid == child else None

            def template_for(self, oid):
                return templates.resolve(graph, oid)

        out = render(graph, page, "<SFMT child>", registry=Registry())
        assert out == '<a href="child.html">The Child</a>'

    def test_embed_renders_inline(self, site):
        graph, page, child = site
        templates = TemplateSet()
        templates.add("child", "<h1><SFMT title></h1>")
        templates.for_object("Child()", "child")

        class Registry:
            def href_for(self, oid):
                return None

            def template_for(self, oid):
                return templates.resolve(graph, oid)

        out = render(graph, page, "<SFMT child EMBED>", registry=Registry())
        assert out == "<h1>The Child</h1>"

    def test_embed_cycle_degrades_gracefully(self):
        graph = Graph()
        a = graph.add_node(Oid("A()"))
        b = graph.add_node(Oid("B()"))
        graph.add_edge(a, "other", b)
        graph.add_edge(b, "other", a)
        templates = TemplateSet()
        templates.add("t", "[<SFMT other EMBED>]")
        templates.for_object("A()", "t")
        templates.for_object("B()", "t")

        class Registry:
            def href_for(self, oid):
                return None

            def template_for(self, oid):
                return templates.resolve(graph, oid)

        out = render(graph, a, "<SFMT other EMBED>", registry=Registry())
        assert out.count("[") < 20  # bounded, no infinite recursion

    def test_anchor_text_prefers_title(self, site):
        graph, page, child = site
        assert Renderer(graph).anchor_text(child) == "The Child"

    def test_anchor_text_falls_back_to_oid(self):
        graph = Graph()
        bare = graph.add_node(Oid("Bare()"))
        assert Renderer(graph).anchor_text(bare) == "Bare()"


class TestSif:
    def test_existence_true(self, site):
        graph, page, _ = site
        assert render(graph, page, "<SIF title>y<SELSE>n</SIF>") == "y"

    def test_existence_false(self, site):
        graph, page, _ = site
        assert render(graph, page, "<SIF nothing>y<SELSE>n</SIF>") == "n"

    def test_equality_comparison(self, site):
        graph, page, _ = site
        assert render(graph, page, '<SIF status = "public">open</SIF>') == "open"
        assert render(graph, page, '<SIF status = "secret">x</SIF>') == ""

    def test_inequality(self, site):
        graph, page, _ = site
        assert render(graph, page, '<SIF status != "secret">ok</SIF>') == "ok"

    def test_comparison_coerces(self, site):
        graph, page, _ = site
        assert render(graph, page, '<SIF year = "1998">match</SIF>') == "match"


class TestSfor:
    def test_iterates_values(self, site):
        graph, page, _ = site
        out = render(graph, page, '<SFOR a IN author DELIM=", ">[<SFMT @a>]</SFOR>')
        assert out == "[Mary], [Dan]"

    def test_loop_variable_path(self, site):
        graph, page, _ = site
        out = render(graph, page, "<SFOR c IN child><SFMT @c.title></SFOR>")
        assert out == "The Child"

    def test_paper_equivalence_enum_vs_sfor(self, site):
        """The paper: <SFMT author ENUM DELIM=","> is shorthand for the
        explicit SFOR form."""
        graph, page, _ = site
        shorthand = render(graph, page, '<SFMT author ENUM DELIM=",">')
        explicit = render(graph, page, '<SFOR a IN author DELIM=","><SFMT @a></SFOR>')
        assert shorthand == explicit

    def test_paper_equivalence_ul(self, site):
        """<SFMT x UL> is shorthand for the UL/SFOR/LI form."""
        graph, page, _ = site
        shorthand = render(graph, page, "<SFMT author UL>")
        explicit = render(
            graph, page, "<UL><SFOR a IN author><LI><SFMT @a></LI></SFOR></UL>"
        )
        assert shorthand == explicit.replace("<UL>", "<ul>").replace(
            "</UL>", "</ul>"
        ).replace("<LI>", "<li>").replace("</LI>", "</li>")

    def test_unbound_loop_variable_raises(self, site):
        graph, page, _ = site
        with pytest.raises(TemplateEvaluationError):
            render(graph, page, "<SFMT @ghost>")

    def test_empty_loop(self, site):
        graph, page, _ = site
        assert render(graph, page, "<SFOR a IN nothing>x</SFOR>") == ""
