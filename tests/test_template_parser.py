"""Unit tests for the HTML-template parser."""

import pytest

from repro.errors import TemplateSyntaxError
from repro.template import (
    AttrExpr,
    Conditional,
    Format,
    Literal,
    Loop,
    parse_attr_expr,
    parse_template,
)


class TestLiterals:
    def test_plain_html_passthrough(self):
        template = parse_template("<html><body>hi</body></html>")
        assert template.nodes == [Literal("<html><body>hi</body></html>")]

    def test_mixed_literals_and_tags(self):
        template = parse_template("a<SFMT title>b")
        assert [type(n).__name__ for n in template.nodes] == [
            "Literal", "Format", "Literal",
        ]

    def test_source_lines(self):
        template = parse_template("line1\n\nline3\n")
        assert template.source_lines == 2


class TestAttrExpr:
    def test_single(self):
        assert parse_attr_expr("Paper") == AttrExpr(("Paper",))

    def test_dotted(self):
        assert parse_attr_expr("a.b.c") == AttrExpr(("a", "b", "c"))

    def test_loop_variable(self):
        assert parse_attr_expr("@a") == AttrExpr((), var="a")

    def test_loop_variable_with_path(self):
        assert parse_attr_expr("@a.title") == AttrExpr(("title",), var="a")

    def test_quoted_segment(self):
        assert parse_attr_expr('"HTML-template"') == AttrExpr(("HTML-template",))

    def test_mixed_quoted_and_plain(self):
        assert parse_attr_expr('a."x y".b') == AttrExpr(("a", "x y", "b"))

    def test_empty_rejected(self):
        with pytest.raises(TemplateSyntaxError):
            parse_attr_expr("")

    def test_bad_punctuation(self):
        with pytest.raises(TemplateSyntaxError):
            parse_attr_expr("a..b")


class TestSfmt:
    def test_plain(self):
        (node,) = parse_template("<SFMT title>").nodes
        assert isinstance(node, Format)
        assert node.expr == AttrExpr(("title",))
        assert not node.directives.embed

    def test_case_insensitive_tag(self):
        (node,) = parse_template("<sfmt title>").nodes
        assert isinstance(node, Format)

    def test_embed(self):
        (node,) = parse_template("<SFMT Abstract EMBED>").nodes
        assert node.directives.embed

    def test_enum_delim(self):
        (node,) = parse_template('<SFMT author ENUM DELIM=", ">').nodes
        assert node.directives.enum
        assert node.directives.delim == ", "

    def test_delim_with_angle_brackets(self):
        (node,) = parse_template('<SFMT author ENUM DELIM="<hr>">').nodes
        assert node.directives.delim == "<hr>"

    def test_ul(self):
        (node,) = parse_template("<SFMT Abstract EMBED UL>").nodes
        assert node.directives.list_style == "ul"
        assert node.directives.enumerates

    def test_ol(self):
        (node,) = parse_template("<SFMT step OL>").nodes
        assert node.directives.list_style == "ol"

    def test_order_and_key(self):
        (node,) = parse_template("<SFMT YearPage UL ORDER=ascend KEY=Year>").nodes
        assert node.directives.order == "ascend"
        assert node.directives.key == "Year"

    def test_order_descend(self):
        (node,) = parse_template("<SFMT x ORDER=descend>").nodes
        assert node.directives.order == "descend"

    def test_bad_order_value(self):
        with pytest.raises(TemplateSyntaxError):
            parse_template("<SFMT x ORDER=sideways>")

    def test_unknown_directive(self):
        with pytest.raises(TemplateSyntaxError):
            parse_template("<SFMT x BLINK>")

    def test_missing_expression(self):
        with pytest.raises(TemplateSyntaxError):
            parse_template("<SFMT >")

    def test_unterminated_tag(self):
        with pytest.raises(TemplateSyntaxError):
            parse_template("<SFMT title")


class TestSif:
    def test_existence(self):
        (node,) = parse_template("<SIF abstract>yes</SIF>").nodes
        assert isinstance(node, Conditional)
        assert node.op == ""
        assert node.then_nodes == (Literal("yes"),)
        assert node.else_nodes == ()

    def test_else_branch(self):
        (node,) = parse_template("<SIF a>t<SELSE>e</SIF>").nodes
        assert node.then_nodes == (Literal("t"),)
        assert node.else_nodes == (Literal("e"),)

    def test_comparison(self):
        (node,) = parse_template('<SIF status = "public">x</SIF>').nodes
        assert node.op == "=" and node.literal == "public"

    def test_negative_comparison(self):
        (node,) = parse_template('<SIF status != "secret">x</SIF>').nodes
        assert node.op == "!="

    def test_nested_sif(self):
        (node,) = parse_template("<SIF a><SIF b>x</SIF></SIF>").nodes
        assert isinstance(node.then_nodes[0], Conditional)

    def test_unclosed(self):
        with pytest.raises(TemplateSyntaxError):
            parse_template("<SIF a>dangling")

    def test_bad_comparison(self):
        with pytest.raises(TemplateSyntaxError):
            parse_template("<SIF a = unquoted>x</SIF>")


class TestSfor:
    def test_basic(self):
        (node,) = parse_template("<SFOR a IN author>x</SFOR>").nodes
        assert isinstance(node, Loop)
        assert node.var == "a"
        assert node.expr == AttrExpr(("author",))

    def test_delim(self):
        (node,) = parse_template('<SFOR a IN author DELIM=",">x</SFOR>').nodes
        assert node.delim == ","

    def test_body_with_var_reference(self):
        (node,) = parse_template("<SFOR a IN author><SFMT @a EMBED></SFOR>").nodes
        inner = node.body[0]
        assert isinstance(inner, Format)
        assert inner.expr.var == "a"

    def test_case_insensitive_in(self):
        (node,) = parse_template("<SFOR a in author>x</SFOR>").nodes
        assert node.var == "a"

    def test_missing_in(self):
        with pytest.raises(TemplateSyntaxError):
            parse_template("<SFOR a author>x</SFOR>")

    def test_unclosed(self):
        with pytest.raises(TemplateSyntaxError):
            parse_template("<SFOR a IN author>x")

    def test_nested_loops(self):
        (node,) = parse_template(
            "<SFOR a IN author><SFOR b IN @a.name>x</SFOR></SFOR>"
        ).nodes
        assert isinstance(node.body[0], Loop)


class TestErrorPositions:
    def test_line_number_reported(self):
        try:
            parse_template("line1\nline2\n<SFMT x BLINK>")
        except TemplateSyntaxError as error:
            assert error.line == 3
        else:  # pragma: no cover
            pytest.fail("expected TemplateSyntaxError")

    def test_unexpected_closer(self):
        with pytest.raises(TemplateSyntaxError):
            parse_template("text</SIF>")


class TestNodeLines:
    def test_nodes_remember_their_lines(self):
        template = parse_template(
            "<h1>t</h1>\n<SFMT title>\n<SIF year>y</SIF>\n"
            "<SFOR a IN author>x</SFOR>"
        )
        fmt = template.nodes[1]
        cond = template.nodes[3]
        loop = template.nodes[5]
        assert isinstance(fmt, Format) and fmt.line == 2
        assert isinstance(cond, Conditional) and cond.line == 3
        assert isinstance(loop, Loop) and loop.line == 4

    def test_line_excluded_from_equality(self):
        one = parse_template("<SFMT title>").nodes[0]
        two = parse_template("\n\n<SFMT title>").nodes[-1]
        assert one == two
