"""Concurrent-hammer regression tests for shared hot-path state.

The serving tier (repro.serve) runs N worker threads against state the
rest of the codebase was free to treat as single-threaded.  These tests
pin down the pieces the audit made safe:

* the :class:`~repro.struql.plancache.PlanCache` LRU (plans, NFAs, and
  the PR-5 path-reachability memo) under concurrent mixed traffic;
* the epoch-stamped statistics provider
  (:func:`~repro.repository.indexes.graph_statistics`): concurrent
  readers of an unchanged graph trigger exactly one refresh;
* engine/server counters, which are per-worker by construction and
  aggregated with ``merge()`` -- never incremented across threads.
"""

import threading

from repro.graph import Graph
from repro.repository.indexes import (
    graph_statistics,
    statistics_refresh_counters,
)
from repro.resilience.retry import BreakerState, CircuitBreaker, ManualClock
from repro.serve import AdmissionControl, Generation, PageEntry
from repro.serve.core import WorkerMetrics
from repro.serve.locks import RWLock
from repro.struql import Metrics, parse, QueryEngine
from repro.struql.plancache import PlanCache
from repro.core.incremental import ClickMetrics
from repro.workloads import HOMEPAGE_QUERY, bibliography_graph


def _hammer(worker, threads=8, rounds=50):
    """Run ``worker(thread_index, round_index)`` from many threads;
    re-raise the first failure."""
    errors = []
    barrier = threading.Barrier(threads)

    def _loop(index):
        try:
            barrier.wait(timeout=10)
            for round_index in range(rounds):
                worker(index, round_index)
        except Exception as error:  # pragma: no cover - only on regression
            errors.append(error)

    pool = [threading.Thread(target=_loop, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    if errors:
        raise errors[0]


class TestStatisticsProvider:
    def test_unchanged_graph_refreshes_once(self):
        graph = bibliography_graph(10, seed=1)
        graph._stats_cache = None
        before = statistics_refresh_counters()
        results = {}

        def worker(index, round_index):
            results[(index, round_index)] = graph_statistics(graph)

        _hammer(worker, threads=8, rounds=30)
        after = statistics_refresh_counters()
        taken = (
            after["stats_full_snapshots"] - before["stats_full_snapshots"]
        ) + (after["stats_delta_refreshes"] - before["stats_delta_refreshes"])
        assert taken == 1  # one refresh, every thread reused it
        snapshots = set(map(id, results.values()))
        assert len(snapshots) == 1

    def test_concurrent_readers_during_mutations_see_consistent_epochs(self):
        graph = bibliography_graph(10, seed=2)
        stop = threading.Event()

        def mutate():
            node = graph.collection("Publications")[0]
            for index in range(40):
                graph.add_edge(node, "note", f"n{index}")
            stop.set()

        mutator = threading.Thread(target=mutate)
        failures = []

        def reader():
            while not stop.is_set():
                stats = graph_statistics(graph)
                # a snapshot must describe a real epoch of this graph
                if stats.epoch > graph.epoch or stats.graph_key != id(graph):
                    failures.append(stats.epoch)

        readers = [threading.Thread(target=reader) for _ in range(6)]
        for thread in readers:
            thread.start()
        mutator.start()
        mutator.join()
        for thread in readers:
            thread.join()
        assert not failures
        assert graph_statistics(graph).epoch == graph.epoch


class TestPlanCacheConcurrency:
    def test_mixed_hammer_is_consistent(self):
        cache = PlanCache(max_entries=64, max_path_entries=64)
        program = parse(HOMEPAGE_QUERY)
        conditions = tuple(program.queries[0].where)

        def worker(index, round_index):
            key = PlanCache.plan_key(
                conditions, frozenset(), True, (1, round_index % 7)
            )
            if cache.get_plan(key) is None:
                cache.put_plan(key, conditions, list(conditions))
            assert cache.get_plan(key) is not None

        _hammer(worker, threads=8, rounds=100)
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 8 * 100 * 2
        assert stats["plans"] <= 64

    def test_shared_engines_agree_under_concurrency(self):
        """Per-thread engines over one graph and one shared cache produce
        identical binding counts."""
        graph = bibliography_graph(8, seed=3)
        program = parse(HOMEPAGE_QUERY)
        conditions = program.queries[0].where
        cache = PlanCache()
        expected = len(QueryEngine(graph, plan_cache=cache).bindings(conditions))
        counts = set()
        lock = threading.Lock()

        def worker(index, round_index):
            engine = QueryEngine(graph, plan_cache=cache)
            rows = engine.bindings(conditions)
            with lock:
                counts.add(len(rows))

        _hammer(worker, threads=6, rounds=5)
        assert counts == {expected}


class TestPerWorkerCounters:
    def test_metrics_merge_sums_every_field(self):
        left, right = Metrics(), Metrics()
        left.conditions_evaluated = 3
        left.plan_cache_hits = 1
        right.conditions_evaluated = 4
        right.path_memo_hits = 2
        left.merge(right)
        assert left.conditions_evaluated == 7
        assert left.plan_cache_hits == 1
        assert left.path_memo_hits == 2

    def test_click_metrics_merge(self):
        left, right = ClickMetrics(), ClickMetrics()
        left.expansions = 2
        right.expansions = 5
        right.degraded_serves = 1
        left.merge(right)
        assert left.expansions == 7
        assert left.degraded_serves == 1

    def test_worker_metrics_merge(self):
        left, right = WorkerMetrics(), WorkerMetrics()
        left.requests = 10
        right.requests = 5
        right.not_found = 2
        left.merge(right)
        assert left.requests == 15
        assert left.not_found == 2


class TestServeSharedState:
    def test_generation_fill_race_single_winner(self):
        generation = Generation(1, 0, complete=False)
        entry = PageEntry(200, b"payload")

        def worker(index, round_index):
            generation.fill("/contested", entry)

        _hammer(worker, threads=8, rounds=10)
        assert generation.fills == 1
        assert generation.fill_races == 8 * 10 - 1

    def test_admission_counters_balance(self):
        admission = AdmissionControl(limit=4)

        def worker(index, round_index):
            if admission.try_acquire():
                admission.release()

        _hammer(worker, threads=8, rounds=200)
        stats = admission.stats()
        assert stats["in_flight"] == 0
        assert stats["peak"] <= 4
        assert stats["admitted"] + stats["shed"] == 8 * 200

    def test_rwlock_excludes_writers_from_readers(self):
        lock = RWLock()
        state = {"value": 0, "torn": 0}

        def worker(index, round_index):
            if index == 0:
                with lock.write_locked():
                    state["value"] += 1
                    state["value"] += 1
            else:
                with lock.read_locked():
                    if state["value"] % 2 != 0:
                        state["torn"] += 1

        _hammer(worker, threads=6, rounds=200)
        assert state["torn"] == 0
        assert state["value"] == 2 * 200


class TestCircuitBreakerConcurrency:
    """The breaker is shared by every serving thread; its transitions
    must hold up under contention."""

    def test_half_open_admits_exactly_one_probe(self):
        """When the reset timeout elapses and 8 threads race into
        ``allow()``, exactly one is admitted as the half-open probe;
        the rest stay rejected until the probe reports back."""
        clock = ManualClock()
        breaker = CircuitBreaker(
            "hammer", failure_threshold=1, reset_timeout=5.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.advance(5.0)  # breaker is now eligible for one probe

        admitted = []
        barrier = threading.Barrier(8)

        def _race(index):
            barrier.wait(timeout=10)
            if breaker.allow():
                admitted.append(index)

        pool = [threading.Thread(target=_race, args=(i,)) for i in range(8)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert len(admitted) == 1
        assert breaker.state is BreakerState.HALF_OPEN
        # probe still in flight: nobody else gets in
        assert not breaker.allow()
        # probe succeeds: circuit closes, traffic flows again
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_next_window_reprobes(self):
        clock = ManualClock()
        breaker = CircuitBreaker(
            "hammer", failure_threshold=1, reset_timeout=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()  # the probe
        breaker.record_failure()  # probe fails: re-open
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow()  # a fresh probe next window

    def test_counters_consistent_under_hammer(self):
        """Mixed allow/success/failure traffic from 8 threads must keep
        the lifetime counters coherent (no lost increments) and leave
        the breaker in a valid state."""
        breaker = CircuitBreaker("hammer", failure_threshold=3, reset_timeout=0.0)

        def worker(index, round_index):
            if breaker.allow():
                if (index + round_index) % 3 == 0:
                    breaker.record_failure()
                else:
                    breaker.record_success()

        _hammer(worker, threads=8, rounds=200)
        snapshot = breaker.snapshot()
        assert snapshot["state"] in ("closed", "open", "half-open")
        assert snapshot["total_failures"] <= 8 * 200
        assert snapshot["times_opened"] <= snapshot["total_failures"]
