"""Unit tests for the atomic-value layer (repro.graph.values)."""

import pytest

from repro.graph import (
    Atom,
    AtomType,
    atoms_equal,
    boolean,
    compare_atoms,
    from_python,
    html_file,
    image_file,
    integer,
    parse_typed_value,
    postscript_file,
    real,
    string,
    text_file,
    type_predicate,
    type_predicate_names,
    url,
)


class TestConstructors:
    def test_string(self):
        atom = string("hello")
        assert atom.type is AtomType.STRING
        assert atom.value == "hello"

    def test_integer_coerces_to_int(self):
        assert integer(True).value == 1

    def test_real(self):
        assert real(2).value == 2.0
        assert isinstance(real(2).value, float)

    def test_boolean(self):
        assert boolean(1).value is True

    def test_url(self):
        assert url("http://x").type is AtomType.URL

    def test_file_flavours(self):
        assert text_file("a.txt").type is AtomType.TEXT_FILE
        assert image_file("a.gif").type is AtomType.IMAGE_FILE
        assert postscript_file("a.ps").type is AtomType.POSTSCRIPT_FILE
        assert html_file("a.html").type is AtomType.HTML_FILE

    def test_is_file(self):
        assert image_file("a.gif").is_file
        assert not string("a").is_file
        assert not integer(1).is_file

    def test_bad_payload_rejected(self):
        with pytest.raises(TypeError):
            Atom(AtomType.STRING, [1, 2])  # type: ignore[arg-type]


class TestFromPython:
    def test_atom_passthrough(self):
        atom = string("x")
        assert from_python(atom) is atom

    def test_bool_before_int(self):
        assert from_python(True).type is AtomType.BOOLEAN

    def test_int(self):
        assert from_python(7).type is AtomType.INTEGER

    def test_float(self):
        assert from_python(7.5).type is AtomType.FLOAT

    def test_str(self):
        assert from_python("x").type is AtomType.STRING

    def test_unsupported(self):
        with pytest.raises(TypeError):
            from_python(object())


class TestRendering:
    def test_as_string_boolean(self):
        assert boolean(True).as_string() == "true"
        assert boolean(False).as_string() == "false"

    def test_as_string_number(self):
        assert integer(1998).as_string() == "1998"

    def test_as_number_from_string(self):
        assert string("3.5").as_number() == 3.5

    def test_as_number_non_numeric(self):
        assert string("hello").as_number() is None

    def test_str_dunder(self):
        assert str(string("x")) == "x"


class TestCoercingEquality:
    def test_same_type(self):
        assert atoms_equal(string("a"), string("a"))
        assert not atoms_equal(string("a"), string("b"))

    def test_integer_vs_string(self):
        assert atoms_equal(integer(1998), string("1998"))
        assert atoms_equal(string("1998"), integer(1998))

    def test_integer_vs_float(self):
        assert atoms_equal(integer(2), real(2.0))

    def test_string_vs_url_same_text(self):
        assert atoms_equal(string("http://x"), url("http://x"))

    def test_not_equal_across_values(self):
        assert not atoms_equal(integer(1998), string("1997"))

    def test_boolean_coerces_via_rendering(self):
        assert atoms_equal(boolean(True), string("true"))


class TestCompare:
    def test_numeric_ordering(self):
        assert compare_atoms(integer(2), integer(10)) < 0

    def test_numeric_ordering_across_types(self):
        assert compare_atoms(string("2"), integer(10)) < 0

    def test_lexicographic_when_not_numeric(self):
        # "2" < "10" numerically but "10" < "2" lexicographically;
        # a non-numeric operand forces lexicographic mode
        assert compare_atoms(string("10x"), string("2x")) < 0

    def test_equal(self):
        assert compare_atoms(string("a"), string("a")) == 0


class TestTypePredicates:
    def test_registry_names(self):
        names = type_predicate_names()
        assert "isImageFile" in names
        assert "isPostScript" in names

    def test_image_predicate(self):
        predicate = type_predicate("isImageFile")
        assert predicate(image_file("a.gif"))
        assert not predicate(string("a.gif"))

    def test_is_number(self):
        predicate = type_predicate("isNumber")
        assert predicate(string("42"))
        assert not predicate(string("forty-two"))

    def test_unknown_predicate(self):
        assert type_predicate("isWidget") is None


class TestParseTypedValue:
    def test_integer(self):
        assert parse_typed_value("integer", "1998") == integer(1998)

    def test_float(self):
        assert parse_typed_value("float", "1.5") == real(1.5)

    def test_boolean(self):
        assert parse_typed_value("boolean", "true") == boolean(True)

    def test_boolean_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_typed_value("boolean", "yes")

    def test_file_types_keep_payload(self):
        assert parse_typed_value("image", "a.gif") == image_file("a.gif")
        assert parse_typed_value("text", "body") == text_file("body")

    def test_unknown_type_name(self):
        with pytest.raises(ValueError):
            parse_typed_value("widget", "x")

    def test_bad_integer_payload(self):
        with pytest.raises(ValueError):
            parse_typed_value("integer", "not-a-number")


class TestHashability:
    def test_atoms_are_hashable_and_usable_in_sets(self):
        atoms = {string("a"), string("a"), integer(1)}
        assert len(atoms) == 2

    def test_distinct_types_distinct_hash_keys(self):
        assert len({string("1998"), integer(1998)}) == 2
