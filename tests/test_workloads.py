"""Unit tests for the synthetic workload generators (repro.workloads)."""

from repro.graph import summarize
from repro.wrappers import BibtexWrapper, RelationalWrapper, StructuredFileWrapper
from repro.workloads import (
    article_pages,
    bibliography_graph,
    build_mediator,
    departments_table,
    generate_entries,
    news_graph,
    news_graph_from_pages,
    personnel_table,
    projects_text,
)


class TestBibliography:
    def test_deterministic(self):
        assert generate_entries(10, seed=3) == generate_entries(10, seed=3)

    def test_different_seeds_differ(self):
        assert generate_entries(10, seed=1) != generate_entries(10, seed=2)

    def test_count(self):
        graph = bibliography_graph(25, seed=0)
        assert graph.collection_cardinality("Publications") == 25

    def test_irregularity_present(self):
        schema = summarize(bibliography_graph(60, seed=0))
        pubs = schema.collection_schema("Publications")
        assert "month" in pubs.irregular_attributes
        assert 0.0 < pubs.null_fraction < 0.8

    def test_journal_vs_booktitle_disjoint(self):
        graph = bibliography_graph(40, seed=2)
        for member in graph.collection("Publications"):
            has_journal = graph.attribute(member, "journal") is not None
            has_booktitle = graph.attribute(member, "booktitle") is not None
            assert has_journal != has_booktitle

    def test_rates_respected_at_extremes(self):
        graph = bibliography_graph(
            20, seed=0, month_rate=0.0, abstract_rate=1.0
        )
        for member in graph.collection("Publications"):
            assert graph.attribute(member, "month") is None
            assert graph.attribute(member, "abstract") is not None


class TestOrgSite:
    def test_personnel_scale(self):
        table = personnel_table(50, seed=0)
        assert len(table.rows) == 50
        assert len(set(row[0] for row in table.rows)) == 50  # unique logins

    def test_departments_reference_people(self):
        people = personnel_table(50, seed=0)
        departments = departments_table(people, seed=0)
        logins = {row[0] for row in people.rows}
        assert all(row[2] in logins for row in departments.rows)

    def test_projects_irregular(self):
        people = personnel_table(60, seed=1)
        graph = StructuredFileWrapper(projects_text(people, count=20, seed=1)).wrap()
        synopses = sum(
            1 for p in graph.collection("Projects")
            if graph.attribute(p, "synopsis") is not None
        )
        assert 0 < synopses < 20  # some but not all

    def test_mediator_materializes_five_sources(self):
        mediator = build_mediator(people=30, seed=0)
        warehouse = mediator.materialize()
        assert len(mediator.last_report.source_sizes) == 5
        assert warehouse.collection_cardinality("People") == 30
        assert warehouse.collection_cardinality("Departments") >= 2
        assert warehouse.collection_cardinality("Publications") >= 10

    def test_mediated_joins_resolve(self):
        warehouse = build_mediator(people=30, seed=0).materialize()
        person = warehouse.collection("People")[0]
        department = warehouse.attribute(person, "department")
        assert department is not None
        assert warehouse.attribute(department, "name") is not None


class TestNews:
    def test_article_pages_deterministic(self):
        assert article_pages(30, seed=5) == article_pages(30, seed=5)

    def test_page_count_includes_category_indexes(self):
        pages = article_pages(30, seed=5)
        assert len(pages) == 30 + 6  # six category index pages

    def test_direct_graph_scale(self):
        graph = news_graph(50, seed=0)
        assert graph.collection_cardinality("Articles") == 50

    def test_wrapped_graph_matches_article_count(self):
        graph = news_graph_from_pages(30, seed=5)
        assert graph.collection_cardinality("Articles") == 30

    def test_articles_have_related_links(self):
        graph = news_graph(30, seed=0)
        member = graph.collection("Articles")[0]
        assert graph.targets(member, "related")
