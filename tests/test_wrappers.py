"""Unit tests for the source wrappers (repro.wrappers)."""

import pytest

from repro.errors import WrapperError
from repro.graph import AtomType, Oid
from repro.wrappers import (
    BibtexWrapper,
    DdlWrapper,
    ForeignKey,
    HtmlSiteWrapper,
    RelationalWrapper,
    StructuredFileWrapper,
    Table,
    infer_atom,
    parse_bibtex,
)

BIBTEX = """
@string{sigmod = "Proceedings of SIGMOD"}

@article{pub1,
  title = {A {Query} Language},
  author = {Mary Fernandez and Dan Suciu},
  journal = {TODS},
  year = 1997,
  month = sep,
  abstract = {Long text here.},
  postscript = {p/pub1.ps},
  url = {http://x.org/pub1}
}

@inproceedings{pub2,
  title = "Catching the Boat",
  author = {Mary Fernandez},
  booktitle = sigmod # ", 1998",
  year = {1998}
}

@comment{ignored stuff}
"""


class TestBibtexParser:
    def test_entry_count(self):
        entries = parse_bibtex(BIBTEX)
        assert len(entries) == 2

    def test_keys_and_types(self):
        entries = parse_bibtex(BIBTEX)
        assert entries[0][0] == "article" and entries[0][1] == "pub1"
        assert entries[1][0] == "inproceedings"

    def test_brace_stripping(self):
        fields = dict(parse_bibtex(BIBTEX)[0][2])
        assert fields["title"] == "A Query Language"

    def test_macro_expansion_and_concat(self):
        fields = dict(parse_bibtex(BIBTEX)[1][2])
        assert fields["booktitle"] == "Proceedings of SIGMOD, 1998"

    def test_month_macro(self):
        fields = dict(parse_bibtex(BIBTEX)[0][2])
        assert fields["month"] == "Sep"

    def test_unbalanced_braces(self):
        with pytest.raises(WrapperError):
            parse_bibtex("@article{x, title = {unclosed }")


class TestBibtexWrapper:
    def test_collection(self):
        graph = BibtexWrapper(BIBTEX).wrap()
        assert graph.collection_cardinality("Publications") == 2

    def test_key_becomes_oid(self):
        graph = BibtexWrapper(BIBTEX).wrap()
        assert graph.has_node(Oid("pub1"))

    def test_field_typing(self):
        graph = BibtexWrapper(BIBTEX).wrap()
        pub1 = Oid("pub1")
        assert graph.attribute(pub1, "year").type is AtomType.INTEGER
        assert graph.attribute(pub1, "abstract").type is AtomType.TEXT_FILE
        assert graph.attribute(pub1, "postscript").type is AtomType.POSTSCRIPT_FILE
        assert graph.attribute(pub1, "url").type is AtomType.URL

    def test_authors_split(self):
        graph = BibtexWrapper(BIBTEX).wrap()
        authors = graph.targets(Oid("pub1"), "author")
        assert [str(a) for a in authors] == ["Mary Fernandez", "Dan Suciu"]

    def test_irregular_attributes(self):
        graph = BibtexWrapper(BIBTEX).wrap()
        assert graph.attribute(Oid("pub1"), "journal") is not None
        assert graph.attribute(Oid("pub2"), "journal") is None
        assert graph.attribute(Oid("pub2"), "booktitle") is not None

    def test_ordered_authors(self):
        graph = BibtexWrapper(BIBTEX, ordered_authors=True).wrap()
        authors = graph.targets(Oid("pub1"), "author")
        assert all(isinstance(a, Oid) for a in authors)
        orders = [graph.attribute(a, "order").value for a in authors]
        assert orders == [1, 2]

    def test_entry_type_attribute(self):
        graph = BibtexWrapper(BIBTEX).wrap()
        assert str(graph.attribute(Oid("pub1"), "type")) == "article"


class TestRelationalWrapper:
    def _tables(self):
        people = Table(
            "people",
            ["login", "name", "dept", "age"],
            [
                ["mff", "Mary", "d1", "35"],
                ["suciu", "Dan", "d1", ""],
                ["alon", "Alon", "d2", "33"],
            ],
        )
        depts = Table("depts", ["id", "title"], [["d1", "DB"], ["d2", "Web"]])
        return people, depts

    def test_rows_become_objects(self):
        people, _ = self._tables()
        graph = RelationalWrapper([people]).wrap()
        assert graph.collection_cardinality("people") == 3

    def test_key_column_names_oids(self):
        people, _ = self._tables()
        graph = RelationalWrapper([people], key_columns={"people": "login"}).wrap()
        assert graph.has_node(Oid("people:mff"))

    def test_empty_cell_is_missing_attribute(self):
        people, _ = self._tables()
        graph = RelationalWrapper([people], key_columns={"people": "login"}).wrap()
        assert graph.attribute(Oid("people:suciu"), "age") is None

    def test_type_inference(self):
        people, _ = self._tables()
        graph = RelationalWrapper([people], key_columns={"people": "login"}).wrap()
        assert graph.attribute(Oid("people:mff"), "age").type is AtomType.INTEGER

    def test_pinned_column_type(self):
        people, _ = self._tables()
        graph = RelationalWrapper(
            [people],
            key_columns={"people": "login"},
            column_types={"people.age": "string"},
        ).wrap()
        assert graph.attribute(Oid("people:mff"), "age").type is AtomType.STRING

    def test_foreign_keys(self):
        people, depts = self._tables()
        graph = RelationalWrapper(
            [people, depts],
            key_columns={"people": "login", "depts": "id"},
            foreign_keys={
                "people": [ForeignKey("dept", "depts", "id", "department")]
            },
        ).wrap()
        assert graph.attribute(Oid("people:mff"), "department") == Oid("depts:d1")
        assert graph.attribute(Oid("people:mff"), "dept") is None  # replaced

    def test_dangling_foreign_key_raises(self):
        people, _ = self._tables()
        with pytest.raises(WrapperError):
            RelationalWrapper(
                [people],
                key_columns={"people": "login"},
                foreign_keys={"people": [ForeignKey("dept", "depts", "id")]},
            ).wrap()

    def test_ragged_row_rejected(self):
        with pytest.raises(WrapperError):
            Table("t", ["a", "b"], [["only-one"]])

    def test_csv_parsing(self):
        table = Table.from_csv("t", "a,b\n1,x\n2,y\n")
        assert table.columns == ["a", "b"]
        assert len(table.rows) == 2

    def test_empty_csv_rejected(self):
        with pytest.raises(WrapperError):
            Table.from_csv("t", "")

    def test_infer_atom_kinds(self):
        assert infer_atom("12").type is AtomType.INTEGER
        assert infer_atom("1.5").type is AtomType.FLOAT
        assert infer_atom("true").type is AtomType.BOOLEAN
        assert infer_atom("http://x").type is AtomType.URL
        assert infer_atom("plain").type is AtomType.STRING


STRUCTURED = """
%collection Projects
%type budget integer
%id name

name: strudel
title: The Strudel Project
member: mff
member: suciu
budget: 100

# a comment
name: tsimmis
title: TSIMMIS
synopsis: Mediation with
  a continued line.
"""


class TestStructuredWrapper:
    def test_records_become_objects(self):
        graph = StructuredFileWrapper(STRUCTURED).wrap()
        assert graph.collection_cardinality("Projects") == 2

    def test_id_directive(self):
        graph = StructuredFileWrapper(STRUCTURED).wrap()
        assert graph.has_node(Oid("Projects:strudel"))

    def test_multivalued_keys(self):
        graph = StructuredFileWrapper(STRUCTURED).wrap()
        members = graph.targets(Oid("Projects:strudel"), "member")
        assert [str(m) for m in members] == ["mff", "suciu"]

    def test_type_directive(self):
        graph = StructuredFileWrapper(STRUCTURED).wrap()
        assert graph.attribute(Oid("Projects:strudel"), "budget").value == 100

    def test_continuation_lines(self):
        graph = StructuredFileWrapper(STRUCTURED).wrap()
        synopsis = graph.attribute(Oid("Projects:tsimmis"), "synopsis")
        assert str(synopsis) == "Mediation with a continued line."

    def test_missing_key_is_missing_attribute(self):
        graph = StructuredFileWrapper(STRUCTURED).wrap()
        assert graph.attribute(Oid("Projects:tsimmis"), "budget") is None

    def test_bad_directive(self):
        with pytest.raises(WrapperError):
            StructuredFileWrapper("%bogus\nname: x").wrap()

    def test_missing_colon(self):
        with pytest.raises(WrapperError):
            StructuredFileWrapper("just some words").wrap()

    def test_orphan_continuation(self):
        with pytest.raises(WrapperError):
            StructuredFileWrapper("  indented first line").wrap()


HTML_PAGES = {
    "index.html": """<html><head><title>Home</title>
<meta name="category" content="root"></head>
<body><h1>Welcome</h1><p>Intro text.</p>
<a href="sub/page.html">subpage</a>
<a href="http://elsewhere.org">external</a>
<img src="logo.gif"></body></html>""",
    "sub/page.html": """<html><head><title>Sub</title></head>
<body><h2>Section</h2><p>Body.</p>
<a href="../index.html">home</a></body></html>""",
}


class TestHtmlWrapper:
    def test_pages_become_objects(self):
        graph = HtmlSiteWrapper(HTML_PAGES).wrap()
        assert graph.collection_cardinality("Pages") == 2

    def test_title_and_headings(self):
        graph = HtmlSiteWrapper(HTML_PAGES).wrap()
        index = Oid("page:index.html")
        assert str(graph.attribute(index, "title")) == "Home"
        assert str(graph.attribute(index, "heading")) == "Welcome"

    def test_internal_links_become_edges(self):
        graph = HtmlSiteWrapper(HTML_PAGES).wrap()
        index = Oid("page:index.html")
        sub = Oid("page:sub/page.html")
        assert graph.attribute(index, "linksTo") == sub
        assert graph.attribute(sub, "linksTo") == index  # relative ../ resolved

    def test_external_links_become_urls(self):
        graph = HtmlSiteWrapper(HTML_PAGES).wrap()
        href = graph.attribute(Oid("page:index.html"), "href")
        assert href.type is AtomType.URL

    def test_images(self):
        graph = HtmlSiteWrapper(HTML_PAGES).wrap()
        image = graph.attribute(Oid("page:index.html"), "image")
        assert image.type is AtomType.IMAGE_FILE

    def test_meta_tags(self):
        graph = HtmlSiteWrapper(HTML_PAGES).wrap()
        meta = graph.attribute(Oid("page:index.html"), "meta-category")
        assert str(meta) == "root"

    def test_paragraph_text(self):
        graph = HtmlSiteWrapper(HTML_PAGES).wrap()
        text = graph.attribute(Oid("page:index.html"), "text")
        assert text.type is AtomType.TEXT_FILE


class TestDdlWrapper:
    def test_wrap(self):
        graph = DdlWrapper('object a { name: "x" }').wrap()
        assert graph.has_node(Oid("a"))
