"""Unit tests for the XML wrapper (repro.wrappers.xmlfiles)."""

import pytest

from repro.errors import WrapperError
from repro.graph import AtomType, Oid
from repro.wrappers import XmlWrapper

XML = """
<bibliography>
  <pub id="p1" lang="en">
    <title>Strudel</title>
    <year>1998</year>
    <author><name>Mary</name><order>1</order></author>
    <author><name>Dan</name><order>2</order></author>
  </pub>
  <pub id="p2">
    <title>WebOQL</title>
    <note>   </note>
  </pub>
  <venue id="v1"><name>SIGMOD</name></venue>
</bibliography>
"""


class TestXmlWrapper:
    def test_collections_from_root_children(self):
        graph = XmlWrapper(XML).wrap()
        assert graph.collection_cardinality("pub") == 2
        assert graph.collection_cardinality("venue") == 1

    def test_explicit_collection_tags(self):
        graph = XmlWrapper(XML, collection_tags=["pub"]).wrap()
        assert graph.collection_cardinality("pub") == 2
        assert not graph.has_collection("venue")

    def test_id_attribute_names_oids(self):
        graph = XmlWrapper(XML).wrap()
        assert graph.has_node(Oid("pub:p1"))
        assert graph.has_node(Oid("venue:v1"))

    def test_xml_attributes_become_edges(self):
        graph = XmlWrapper(XML).wrap()
        assert str(graph.attribute(Oid("pub:p1"), "lang")) == "en"

    def test_leaf_elements_flattened_with_typing(self):
        graph = XmlWrapper(XML).wrap()
        year = graph.attribute(Oid("pub:p1"), "year")
        assert year.type is AtomType.INTEGER and year.value == 1998
        assert str(graph.attribute(Oid("pub:p1"), "title")) == "Strudel"

    def test_structured_children_become_nodes(self):
        graph = XmlWrapper(XML).wrap()
        authors = graph.targets(Oid("pub:p1"), "author")
        assert len(authors) == 2
        assert all(isinstance(a, Oid) for a in authors)
        orders = [graph.attribute(a, "order").value for a in authors]
        assert orders == [1, 2]

    def test_irregularity_preserved(self):
        graph = XmlWrapper(XML).wrap()
        assert graph.attribute(Oid("pub:p2"), "year") is None
        assert graph.attribute(Oid("pub:p1"), "note") is None

    def test_blank_text_ignored(self):
        graph = XmlWrapper(XML).wrap()
        # <note>   </note> is a leaf with blank text: an empty-string atom
        note = graph.attribute(Oid("pub:p2"), "note")
        assert str(note) == ""

    def test_anonymous_elements_get_fresh_oids(self):
        graph = XmlWrapper("<r><a><b>x</b></a><a><b>y</b></a></r>").wrap()
        assert graph.collection_cardinality("a") == 2

    def test_malformed_xml(self):
        with pytest.raises(WrapperError):
            XmlWrapper("<open>").wrap()

    def test_queryable_through_struql(self):
        from repro.struql import query_bindings

        graph = XmlWrapper(XML).wrap()
        rows = query_bindings(
            'where pub(p), p -> "year" -> y, y = "1998"', graph
        )
        assert len(rows) == 1
